/**
 * @file
 * util::FlatMap unit and randomized differential tests: every
 * operation is mirrored against std::unordered_map and the two must
 * agree after each step, across growth, erasure (backward-shift
 * deletion), and rehashing.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "cache/block_cache.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace nvfs {
namespace {

using Map = util::FlatMap<std::uint64_t, std::uint64_t,
                          util::SplitMix64Hash>;

TEST(FlatMapTest, EmptyMapBasics)
{
    Map map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_FALSE(map.contains(42));
    EXPECT_FALSE(map.erase(42));
}

TEST(FlatMapTest, InsertFindErase)
{
    Map map;
    auto [slot, inserted] = map.tryEmplace(7, 70);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*slot, 70u);
    EXPECT_EQ(map.size(), 1u);

    auto [again, fresh] = map.tryEmplace(7, 99);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(*again, 70u) << "tryEmplace must not overwrite";

    map.insertOrAssign(7, 99);
    EXPECT_EQ(*map.find(7), 99u);

    EXPECT_TRUE(map.erase(7));
    EXPECT_FALSE(map.contains(7));
    EXPECT_TRUE(map.empty());
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs)
{
    Map map;
    map[3] += 5;
    map[3] += 5;
    EXPECT_EQ(*map.find(3), 10u);
}

TEST(FlatMapTest, GrowthPreservesEntries)
{
    Map map;
    for (std::uint64_t i = 0; i < 10000; ++i)
        map.insertOrAssign(i, i * 3);
    EXPECT_EQ(map.size(), 10000u);
    for (std::uint64_t i = 0; i < 10000; ++i) {
        const std::uint64_t *found = map.find(i);
        ASSERT_NE(found, nullptr) << "lost key " << i;
        EXPECT_EQ(*found, i * 3);
    }
}

TEST(FlatMapTest, ClusteredKeysSurviveEraseChains)
{
    // Sequential keys force probe chains; backward-shift deletion must
    // keep every remaining chain member reachable.
    Map map;
    for (std::uint64_t i = 0; i < 512; ++i)
        map.insertOrAssign(i, i);
    for (std::uint64_t i = 0; i < 512; i += 2)
        EXPECT_TRUE(map.erase(i));
    for (std::uint64_t i = 0; i < 512; ++i) {
        if (i % 2 == 0)
            EXPECT_EQ(map.find(i), nullptr);
        else
            ASSERT_NE(map.find(i), nullptr) << "lost key " << i;
    }
}

TEST(FlatMapTest, ForEachVisitsEverything)
{
    Map map;
    std::uint64_t want = 0;
    for (std::uint64_t i = 1; i <= 100; ++i) {
        map.insertOrAssign(i, i);
        want += i + i;
    }
    std::uint64_t got = 0;
    std::size_t visits = 0;
    map.forEach([&](const std::uint64_t &key, const std::uint64_t &val) {
        got += key + val;
        ++visits;
    });
    EXPECT_EQ(visits, 100u);
    EXPECT_EQ(got, want);
}

TEST(FlatMapTest, ForEachMutatesValues)
{
    Map map;
    for (std::uint64_t i = 0; i < 64; ++i)
        map.insertOrAssign(i, i);
    map.forEach(
        [](const std::uint64_t &, std::uint64_t &val) { val *= 2; });
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(*map.find(i), i * 2);
}

TEST(FlatMapTest, EraseIfRemovesMatching)
{
    Map map;
    for (std::uint64_t i = 0; i < 1000; ++i)
        map.insertOrAssign(i, i);
    map.eraseIf([](const std::uint64_t &key, const std::uint64_t &) {
        return key % 3 == 0;
    });
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_EQ(map.contains(i), i % 3 != 0) << i;
}

TEST(FlatMapTest, ClearThenReuse)
{
    Map map;
    for (std::uint64_t i = 0; i < 100; ++i)
        map.insertOrAssign(i, i);
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(5), nullptr);
    map.insertOrAssign(5, 50);
    EXPECT_EQ(*map.find(5), 50u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, NonTrivialValueType)
{
    util::FlatMap<std::uint32_t, std::vector<std::string>,
                  util::SplitMix64Hash>
        map;
    map[1].push_back("a");
    map[1].push_back("b");
    map[2].push_back("c");
    ASSERT_NE(map.find(1), nullptr);
    EXPECT_EQ(map.find(1)->size(), 2u);
    EXPECT_TRUE(map.erase(1));
    EXPECT_EQ(map.find(1), nullptr);
    EXPECT_EQ(map.find(2)->front(), "c");
}

/**
 * Differential fuzz: a long random mix of insert / assign / erase /
 * find / clear mirrored into std::unordered_map, with full-content
 * comparison at checkpoints.  Keys are drawn from a small range so
 * collisions, re-insertion after erase, and probe-chain shifts all
 * happen constantly.
 */
TEST(FlatMapTest, DifferentialVsUnorderedMap)
{
    util::Rng rng(0xF1A7);
    Map map;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    const auto checkEqual = [&] {
        ASSERT_EQ(map.size(), ref.size());
        for (const auto &[key, val] : ref) {
            const std::uint64_t *found = map.find(key);
            ASSERT_NE(found, nullptr) << "missing key " << key;
            ASSERT_EQ(*found, val) << "wrong value for key " << key;
        }
        std::size_t visited = 0;
        map.forEach(
            [&](const std::uint64_t &key, const std::uint64_t &val) {
                ++visited;
                auto it = ref.find(key);
                ASSERT_NE(it, ref.end()) << "phantom key " << key;
                ASSERT_EQ(it->second, val);
            });
        ASSERT_EQ(visited, ref.size());
    };

    for (int step = 0; step < 60000; ++step) {
        const auto key =
            static_cast<std::uint64_t>(rng.uniformInt(0, 1023));
        const auto val = static_cast<std::uint64_t>(step);
        switch (rng.uniformInt(0, 9)) {
          case 0:
          case 1:
          case 2: { // tryEmplace
            const bool inserted = map.tryEmplace(key, val).second;
            const bool refInserted = ref.try_emplace(key, val).second;
            ASSERT_EQ(inserted, refInserted);
            break;
          }
          case 3:
          case 4:
          case 5: // insertOrAssign
            map.insertOrAssign(key, val);
            ref[key] = val;
            break;
          case 6:
          case 7: { // erase
            const bool erased = map.erase(key);
            ASSERT_EQ(erased, ref.erase(key) == 1);
            break;
          }
          case 8: { // find
            const std::uint64_t *found = map.find(key);
            const auto it = ref.find(key);
            ASSERT_EQ(found != nullptr, it != ref.end());
            if (found != nullptr)
                ASSERT_EQ(*found, it->second);
            break;
          }
          default: // operator[]
            map[key] += 1;
            ref[key] += 1;
            break;
        }
        if (step % 4096 == 0)
            checkEqual();
    }
    checkEqual();

    // Drain everything through eraseIf and re-verify emptiness.
    map.eraseIf([](const std::uint64_t &, const std::uint64_t &) {
        return true;
    });
    EXPECT_TRUE(map.empty());
}

/** Identity hash: pins a key's home slot to key & (capacity-1), so
 *  tests can construct probe chains at exact table positions. */
struct IdentityHash
{
    std::size_t
    operator()(std::uint64_t v) const
    {
        return static_cast<std::size_t>(v);
    }
};

TEST(FlatMapTest, SimdFindMatchesScalarUnderChurn)
{
    // The vectorized group probe must return exactly what the scalar
    // reference probe returns — same pointer, not just same value —
    // for hits and misses alike, across growth and backward-shift
    // erase churn.  (With NVFS_NO_SIMD both paths are the same code
    // and this degenerates to a tautology, which is fine: the CI
    // scalar-fallback leg runs it that way.)
    util::Rng rng(0x51D);
    Map map;
    for (int step = 0; step < 20000; ++step) {
        const auto key =
            static_cast<std::uint64_t>(rng.uniformInt(0, 2047));
        switch (rng.uniformInt(0, 3)) {
          case 0:
          case 1:
            map.insertOrAssign(key, static_cast<std::uint64_t>(step));
            break;
          case 2:
            map.erase(key);
            break;
          default:
            break;
        }
        const auto probe =
            static_cast<std::uint64_t>(rng.uniformInt(0, 2047));
        ASSERT_EQ(map.find(probe), map.findScalar(probe))
            << "probe " << probe << " diverged at step " << step;
    }
}

TEST(FlatMapTest, SimdFindMatchesScalarAcrossWrapBoundary)
{
    // Home slots near the end of the table force probes to wrap; the
    // group scan must hand off to the scalar tail and still agree
    // with the pure scalar probe for every key.
    util::FlatMap<std::uint64_t, std::uint64_t, IdentityHash> map;
    map.reserve(48); // capacity 64
    // A collision pile-up whose chain starts 6 slots before the wrap
    // point and spills past it: keys 58, 58+64, 58+128, ... all share
    // home slot 58 of 64.
    for (std::uint64_t i = 0; i < 20; ++i)
        map.insertOrAssign(58 + i * 64, i);
    for (std::uint64_t i = 0; i < 24; ++i) {
        const std::uint64_t present = 58 + i * 64;
        ASSERT_EQ(map.find(present), map.findScalar(present));
        const std::uint64_t absent = 59 + i * 64;
        ASSERT_EQ(map.find(absent), map.findScalar(absent));
        ASSERT_EQ(map.find(absent), nullptr);
    }
    // Erase from the middle of the chain (backward-shift moves the
    // tail across the wrap) and re-verify.
    for (const std::uint64_t gone : {58 + 5 * 64, 58 + 11 * 64}) {
        ASSERT_TRUE(map.erase(gone));
        for (std::uint64_t i = 0; i < 24; ++i) {
            const std::uint64_t key = 58 + i * 64;
            ASSERT_EQ(map.find(key), map.findScalar(key));
        }
    }
}

TEST(FlatMapTest, SimdFindMatchesScalarOnLongProbeChains)
{
    // Probe chains longer than one 16-slot group: 40 keys all homed
    // at slot 0 make stored distances 1..40, so a miss must scan
    // three vector groups before the robin-hood early exit fires.
    util::FlatMap<std::uint64_t, std::uint64_t, IdentityHash> map;
    map.reserve(48); // capacity 64
    for (std::uint64_t i = 0; i < 40; ++i)
        map.insertOrAssign(i * 64, i);
    for (std::uint64_t i = 0; i < 48; ++i) {
        const std::uint64_t key = i * 64;
        ASSERT_EQ(map.find(key), map.findScalar(key));
        if (i < 40) {
            ASSERT_NE(map.find(key), nullptr);
            ASSERT_EQ(*map.find(key), i);
        } else {
            ASSERT_EQ(map.find(key), nullptr);
        }
    }
}

TEST(FlatMapTest, ReserveAvoidsMidwayGrowth)
{
    Map map;
    map.reserve(5000);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        auto [slot, inserted] = map.tryEmplace(i, i);
        ASSERT_TRUE(inserted);
        // The pointer must stay valid until the next rehash; with a
        // big enough reserve there is none, so spot-check stability.
        ASSERT_EQ(*slot, i);
    }
    EXPECT_EQ(map.size(), 5000u);
}

TEST(FlatMapTest, BlockIdKeys)
{
    // The BlockCache instantiation: struct key with a custom hasher.
    util::FlatMap<cache::BlockId, std::uint32_t, cache::BlockIdHash>
        map;
    for (std::uint32_t f = 0; f < 64; ++f)
        for (std::uint32_t b = 0; b < 16; ++b)
            map.insertOrAssign({f, b}, f * 100 + b);
    EXPECT_EQ(map.size(), 64u * 16u);
    EXPECT_EQ(*map.find({63, 15}), 6315u);
    EXPECT_TRUE(map.erase({0, 0}));
    EXPECT_EQ(map.find({0, 0}), nullptr);
    EXPECT_EQ(*map.find({0, 1}), 1u);
}

} // namespace
} // namespace nvfs
