/**
 * @file
 * Differential tests for the parallel ingest/prep pipeline: the
 * mmap-chunked trace readers and the sharded prep passes must be
 * byte-identical to their serial references for every worker count,
 * on every bundled trace, and the replayed metrics must not move for
 * any trace x model x engine combination.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/lifetime/lifetime.hpp"
#include "core/lifetime/next_modify.hpp"
#include "core/sim/experiments.hpp"
#include "prep/characterize.hpp"
#include "prep/converter.hpp"
#include "trace/codec.hpp"
#include "trace/stream.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace nvfs {
namespace {

/** Fresh temp dir per test, cleaned of any previous run's leftovers. */
std::string
tempDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/**
 * Serial reference binary reader: the istream codec the mmap reader
 * replaced, event by event in file order.
 */
trace::TraceBuffer
serialReadBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    trace::TraceBuffer buffer;
    buffer.header = trace::decodeHeader(in);
    buffer.events.reserve(buffer.header.eventCount);
    while (auto event = trace::decodeEvent(in))
        buffer.events.push_back(*event);
    return buffer;
}

/** Serial reference text reader: getline + parseTextEvent. */
trace::TraceBuffer
serialReadText(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    trace::TraceBuffer buffer;
    std::string line;
    while (std::getline(in, line)) {
        if (const auto event = trace::parseTextEvent(line))
            buffer.events.push_back(*event);
    }
    buffer.header.eventCount = buffer.events.size();
    return buffer;
}

void
expectSameEvents(const trace::TraceBuffer &got,
                 const trace::TraceBuffer &want,
                 const std::string &label)
{
    ASSERT_EQ(got.events.size(), want.events.size()) << label;
    for (std::size_t i = 0; i < want.events.size(); ++i)
        ASSERT_TRUE(got.events[i] == want.events[i])
            << label << ": event " << i << " diverged";
}

TEST(ParallelIngest, BinaryReaderMatchesSerialOnAllBundledTraces)
{
    const std::string dir = tempDir("nvfs_par_ingest_bin");
    for (int t = 1; t <= 8; ++t) {
        const std::string path =
            dir + "/trace" + std::to_string(t) + ".nvt";
        trace::writeTraceFile(
            path, workload::generateStandardTrace(t, 0.01));
        const trace::TraceBuffer reference = serialReadBinary(path);
        for (const unsigned jobs : {1u, 2u, 8u}) {
            util::ThreadPool pool(jobs);
            const trace::TraceBuffer parallel =
                trace::readTraceFile(path, &pool);
            const std::string label = "trace " + std::to_string(t) +
                                      " at " + std::to_string(jobs) +
                                      " jobs";
            EXPECT_TRUE(parallel.header == reference.header) << label;
            expectSameEvents(parallel, reference, label);
        }
    }
}

TEST(ParallelIngest, TextReaderMatchesSerialOnBundledTraces)
{
    const std::string dir = tempDir("nvfs_par_ingest_text");
    for (const int t : {1, 3, 7}) {
        const std::string path =
            dir + "/trace" + std::to_string(t) + ".txt";
        trace::writeTraceText(
            path, workload::generateStandardTrace(t, 0.01));
        const trace::TraceBuffer reference = serialReadText(path);
        for (const unsigned jobs : {1u, 2u, 8u}) {
            util::ThreadPool pool(jobs);
            const trace::TraceBuffer parallel =
                trace::readTraceText(path, &pool);
            const std::string label = "trace " + std::to_string(t) +
                                      " at " + std::to_string(jobs) +
                                      " jobs";
            EXPECT_EQ(parallel.header.eventCount,
                      reference.header.eventCount)
                << label;
            expectSameEvents(parallel, reference, label);
        }
    }
}

TEST(ParallelIngest, TextReaderHandlesChunkBoundaries)
{
    // A file spanning several 256 KiB parse chunks, with comment and
    // blank lines mixed in, so lines land on and across every kind of
    // chunk boundary.  The parallel reader must agree with the serial
    // getline loop exactly.
    trace::TraceBuffer big = workload::generateStandardTrace(3, 0.02);
    const std::vector<trace::Event> base = big.events;
    while (big.events.size() < 40000)
        big.events.insert(big.events.end(), base.begin(), base.end());

    const std::string dir = tempDir("nvfs_par_ingest_chunks");
    const std::string path = dir + "/big.txt";
    trace::writeTraceText(path, big);
    {
        std::ofstream append(path, std::ios::app);
        append << "# trailing comment\n\n";
    }
    ASSERT_GT(std::filesystem::file_size(path), 3u * 256u * 1024u)
        << "test file too small to exercise multiple chunks";

    const trace::TraceBuffer reference = serialReadText(path);
    ASSERT_EQ(reference.events.size(), big.events.size());
    for (const unsigned jobs : {1u, 2u, 8u}) {
        util::ThreadPool pool(jobs);
        const trace::TraceBuffer parallel =
            trace::readTraceText(path, &pool);
        expectSameEvents(parallel, reference,
                         std::to_string(jobs) + " jobs");
    }
}

TEST(ParallelIngestDeath, BinaryErrorsNamePathAndRecord)
{
    const std::string dir = tempDir("nvfs_par_ingest_err");

    // Too short for a header.
    const std::string stub = dir + "/stub.nvt";
    std::ofstream(stub, std::ios::binary) << "short";
    EXPECT_EXIT(trace::readTraceFile(stub),
                testing::ExitedWithCode(1),
                "truncated trace header: .*stub\\.nvt");

    // Whole records plus stray trailing bytes.
    const std::string torn = dir + "/torn.nvt";
    trace::writeTraceFile(torn,
                          workload::generateStandardTrace(7, 0.01));
    {
        std::ofstream append(torn,
                             std::ios::binary | std::ios::app);
        append << "xyz";
    }
    EXPECT_EXIT(trace::readTraceFile(torn),
                testing::ExitedWithCode(1),
                "truncated trace record: .*torn\\.nvt has 3 stray");

    // Header count disagrees with the records on disk.
    const std::string counted = dir + "/counted.nvt";
    trace::TraceBuffer lying =
        workload::generateStandardTrace(7, 0.01);
    ASSERT_GE(lying.events.size(), 2u);
    {
        // writeTraceFile fixes up eventCount, so forge the header by
        // truncating whole records off a valid file instead.
        trace::writeTraceFile(counted, lying);
        const auto size = std::filesystem::file_size(counted);
        std::filesystem::resize_file(counted,
                                     size - trace::kRecordSize);
    }
    EXPECT_EXIT(trace::readTraceFile(counted),
                testing::ExitedWithCode(1),
                "header claims .* events, found");

    // A record whose event-type byte is garbage: the parallel decode
    // must report the *earliest* bad record, by index.
    const std::string corrupt = dir + "/corrupt.nvt";
    trace::writeTraceFile(corrupt, lying);
    {
        std::fstream patch(corrupt, std::ios::binary | std::ios::in |
                                        std::ios::out);
        // The type byte sits after time/offset/length (u64 x3),
        // file/pid (u32 x2), and client/targetClient (u16 x2) — byte
        // 36 of the record (see encodeEvent).  Clobber record 1's.
        patch.seekp(static_cast<std::streamoff>(
            trace::kTraceHeaderSize + trace::kRecordSize + 36));
        patch.put(static_cast<char>(0xEE));
    }
    EXPECT_EXIT(trace::readTraceFile(corrupt),
                testing::ExitedWithCode(1),
                "corrupt trace record: bad event type "
                "\\(.*corrupt\\.nvt, record 1\\)");

    EXPECT_EXIT(trace::readTraceFile(dir + "/missing.nvt"),
                testing::ExitedWithCode(1),
                "cannot open trace file: .*missing\\.nvt \\(");
}

TEST(ParallelIngestDeath, TextParseErrorReportsLowestLine)
{
    const std::string dir = tempDir("nvfs_par_ingest_text_err");
    const std::string path = dir + "/bad.txt";
    trace::writeTraceText(path,
                          workload::generateStandardTrace(7, 0.01));
    std::size_t lines = 0;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            ++lines;
    }
    {
        std::ofstream append(path, std::ios::app);
        append << "notanumber open stuff\n";
        append << "alsobad open stuff\n"; // later error must lose
    }
    const std::string want =
        "bad\\.txt:" + std::to_string(lines + 1) + ": ";
    EXPECT_EXIT(trace::readTraceText(path),
                testing::ExitedWithCode(1), want);
}

void
expectSameAccumulator(const util::Accumulator &got,
                      const util::Accumulator &want,
                      const std::string &label)
{
    EXPECT_EQ(got.count(), want.count()) << label;
    EXPECT_EQ(got.sum(), want.sum()) << label;
    EXPECT_EQ(got.min(), want.min()) << label;
    EXPECT_EQ(got.max(), want.max()) << label;
    EXPECT_EQ(got.variance(), want.variance()) << label;
}

TEST(ParallelPrep, CharacterizeBitIdenticalAcrossWidths)
{
    for (const int t : {3, 7}) {
        const prep::OpStream ops = prep::convertTrace(
            workload::generateStandardTrace(t, 0.02));
        util::ThreadPool one(1);
        const prep::WorkloadProfile want =
            prep::characterize(ops, &one);
        for (const unsigned jobs : {2u, 8u}) {
            util::ThreadPool pool(jobs);
            const prep::WorkloadProfile got =
                prep::characterize(ops, &pool);
            const std::string label = "trace " + std::to_string(t) +
                                      " at " + std::to_string(jobs) +
                                      " jobs";
            expectSameAccumulator(got.readSize, want.readSize,
                                  label + " readSize");
            expectSameAccumulator(got.writeSize, want.writeSize,
                                  label + " writeSize");
            expectSameAccumulator(got.fileSize, want.fileSize,
                                  label + " fileSize");
            expectSameAccumulator(got.openSeconds, want.openSeconds,
                                  label + " openSeconds");
            EXPECT_EQ(got.readBytes, want.readBytes) << label;
            EXPECT_EQ(got.writeBytes, want.writeBytes) << label;
            EXPECT_EQ(got.opens, want.opens) << label;
            EXPECT_EQ(got.deletes, want.deletes) << label;
            EXPECT_EQ(got.fsyncs, want.fsyncs) << label;
            EXPECT_EQ(got.sequentialReadFraction,
                      want.sequentialReadFraction)
                << label;
            EXPECT_EQ(got.sequentialWriteFraction,
                      want.sequentialWriteFraction)
                << label;
            EXPECT_EQ(got.readOnlyOpenFraction,
                      want.readOnlyOpenFraction)
                << label;
            EXPECT_EQ(got.writeOnlyOpenFraction,
                      want.writeOnlyOpenFraction)
                << label;
        }
    }
}

TEST(ParallelPrep, LifetimesBitIdenticalAcrossWidths)
{
    for (const int t : {3, 7}) {
        const prep::OpStream ops = prep::convertTrace(
            workload::generateStandardTrace(t, 0.02));
        util::ThreadPool one(1);
        const core::LifetimeResult want =
            core::analyzeLifetimes(ops, &one);
        for (const unsigned jobs : {2u, 8u}) {
            util::ThreadPool pool(jobs);
            const core::LifetimeResult got =
                core::analyzeLifetimes(ops, &pool);
            const std::string label = "trace " + std::to_string(t) +
                                      " at " + std::to_string(jobs) +
                                      " jobs";
            EXPECT_EQ(got.totalWritten, want.totalWritten) << label;
            EXPECT_EQ(got.byFate, want.byFate) << label;
            ASSERT_EQ(got.runs.size(), want.runs.size()) << label;
            for (std::size_t i = 0; i < want.runs.size(); ++i) {
                const core::ByteRun &a = got.runs[i];
                const core::ByteRun &b = want.runs[i];
                ASSERT_TRUE(a.file == b.file && a.begin == b.begin &&
                            a.end == b.end && a.birth == b.birth &&
                            a.death == b.death && a.fate == b.fate)
                    << label << ": run " << i << " diverged";
            }
        }
    }
}

TEST(ParallelPrep, NextModifyIndexAgreesAcrossWidths)
{
    const prep::OpStream ops = prep::convertTrace(
        workload::generateStandardTrace(7, 0.02));
    util::ThreadPool one(1);
    const core::NextModifyIndex want(ops, &one);
    // Probe around every write op's first block: just before, at, and
    // after the op time — the full lookup surface the replay uses.
    for (const unsigned jobs : {2u, 8u}) {
        util::ThreadPool pool(jobs);
        const core::NextModifyIndex got(ops, &pool);
        EXPECT_EQ(got.blockCount(), want.blockCount())
            << jobs << " jobs";
        std::size_t probed = 0;
        for (std::size_t i = 0;
             i < ops.ops.size() && probed < 2000; ++i) {
            const prep::Op op = ops.ops[i];
            if (op.type != prep::OpType::Write)
                continue;
            ++probed;
            const cache::BlockId id{
                op.file, static_cast<std::uint32_t>(
                             op.offset / kBlockSize)};
            for (const TimeUs after :
                 {op.time == 0 ? TimeUs{0} : op.time - 1, op.time,
                  op.time + 1}) {
                ASSERT_EQ(got.nextModify(id, after),
                          want.nextModify(id, after))
                    << "op " << i << " at " << jobs << " jobs";
            }
        }
        EXPECT_GT(probed, 0u);
    }
}

TEST(ParallelIngest, ReplayIdenticalAcrossWidthsForEveryCombo)
{
    // The acceptance matrix: every bundled trace x model x engine.
    // Ops ingested+prepped at 8 jobs must equal the 1-job ops, and
    // the simulated metrics must be byte-identical either way.
    const std::string dir = tempDir("nvfs_par_ingest_replay");
    for (int t = 1; t <= 8; ++t) {
        const std::string path =
            dir + "/trace" + std::to_string(t) + ".nvt";
        trace::writeTraceFile(
            path, workload::generateStandardTrace(t, 0.01));

        util::ThreadPool one(1);
        util::ThreadPool eight(8);
        const prep::OpStream serial_ops =
            prep::convertTrace(trace::readTraceFile(path, &one));
        const prep::OpStream parallel_ops =
            prep::convertTrace(trace::readTraceFile(path, &eight));
        ASSERT_TRUE(parallel_ops.ops == serial_ops.ops)
            << "trace " << t << ": parallel ingest changed the ops";

        for (const auto kind :
             {core::ModelKind::Volatile, core::ModelKind::WriteAside,
              core::ModelKind::Unified}) {
            for (const bool extent : {false, true}) {
                core::ModelConfig model;
                model.kind = kind;
                model.volatileBytes = 4 * kMiB;
                model.nvramBytes = kMiB;
                model.extentOps = extent;
                const core::Metrics a =
                    core::runClientSim(serial_ops, model);
                const core::Metrics b =
                    core::runClientSim(parallel_ops, model);
                EXPECT_EQ(a, b)
                    << "trace " << t << " model "
                    << static_cast<int>(kind) << " extent=" << extent
                    << " diverged";
            }
        }
    }
}

} // namespace
} // namespace nvfs
