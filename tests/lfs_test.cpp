/**
 * @file
 * Unit tests for the log-structured file system: segment sealing and
 * classification, metadata/summary accounting, deletion semantics,
 * the inode map, the cleaner, and crash recovery.
 */

#include <gtest/gtest.h>

#include "lfs/cleaner.hpp"
#include "lfs/log.hpp"
#include "lfs/recovery.hpp"

namespace nvfs::lfs {
namespace {

LfsConfig
smallConfig(std::uint32_t disk_segments = 0)
{
    LfsConfig config;
    config.segmentBytes = 64 * kKiB; // 16 blocks: easy to fill
    config.diskSegments = disk_segments;
    return config;
}

TEST(InodeMap, UpdateReturnsPrevious)
{
    InodeMap map;
    EXPECT_FALSE(map.locate(1, 0).has_value());
    EXPECT_FALSE(map.update(1, 0, {5, 2}).has_value());
    const auto old = map.update(1, 0, {6, 0});
    ASSERT_TRUE(old.has_value());
    EXPECT_EQ(*old, (SegmentAddress{5, 2}));
    EXPECT_EQ(*map.locate(1, 0), (SegmentAddress{6, 0}));
}

TEST(InodeMap, RemoveFileReturnsAllAddresses)
{
    InodeMap map;
    map.update(1, 0, {0, 0});
    map.update(1, 1, {0, 1});
    map.update(2, 0, {0, 2});
    const auto removed = map.removeFile(1);
    EXPECT_EQ(removed.size(), 2u);
    EXPECT_EQ(map.fileCount(), 1u);
    EXPECT_EQ(map.blockCount(), 1u);
}

TEST(InodeMap, TruncateDropsTail)
{
    InodeMap map;
    for (std::uint32_t b = 0; b < 5; ++b)
        map.update(1, b, {0, b});
    const auto dropped = map.truncate(1, 2);
    EXPECT_EQ(dropped.size(), 3u);
    EXPECT_TRUE(map.locate(1, 1).has_value());
    EXPECT_FALSE(map.locate(1, 2).has_value());
}

TEST(InodeMap, Equality)
{
    InodeMap a, b;
    a.update(1, 0, {0, 0});
    EXPECT_FALSE(a == b);
    b.update(1, 0, {0, 0});
    EXPECT_TRUE(a == b);
}

TEST(LfsLog, ForcedSealIsPartial)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    EXPECT_EQ(log.pendingBytes(), kBlockSize);
    EXPECT_TRUE(log.seal(SealCause::Fsync));
    EXPECT_EQ(log.pendingBytes(), 0u);

    const LogStats &stats = log.stats();
    EXPECT_EQ(stats.segmentsWritten, 1u);
    EXPECT_EQ(stats.partialSegments, 1u);
    EXPECT_EQ(stats.partialsByFsync, 1u);
    EXPECT_EQ(stats.fullSegments, 0u);
    EXPECT_EQ(stats.fsyncDataBytes, kBlockSize);
}

TEST(LfsLog, AutoSealOnFullSegment)
{
    LfsLog log(smallConfig());
    // 64 KB segment: metadata (4 KB) + summary leave room for ~14
    // blocks; writing 20 blocks must force at least one Full seal.
    for (std::uint32_t b = 0; b < 20; ++b)
        log.writeBlock(1, b, kBlockSize);
    EXPECT_GE(log.stats().fullSegments, 1u);
    EXPECT_EQ(log.stats().partialSegments, 0u);
    EXPECT_GT(log.pendingBytes(), 0u); // remainder still pending
}

TEST(LfsLog, SealOnEmptyLogIsNoop)
{
    LfsLog log(smallConfig());
    EXPECT_FALSE(log.seal(SealCause::Timeout));
    EXPECT_EQ(log.stats().segmentsWritten, 0u);
}

TEST(LfsLog, MetadataChargedPerFile)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.writeBlock(2, 0, kBlockSize);
    log.writeBlock(3, 0, kBlockSize);
    log.seal(SealCause::Timeout);
    const Segment &segment = log.segments().back();
    // One metadata block per distinct file plus the summary.
    EXPECT_EQ(segment.metadataBytes, 3 * kBlockSize);
    EXPECT_EQ(segment.summaryBytes, 512u);
    EXPECT_EQ(segment.dataBytes, 3 * kBlockSize);
}

TEST(LfsLog, PendingOverwriteCoalesces)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, 1000);
    log.writeBlock(1, 0, 3000); // same block, more bytes
    EXPECT_EQ(log.pendingBytes(), 3000u);
    log.seal(SealCause::Timeout);
    EXPECT_EQ(log.segments().back().dataBytes, 3000u);
}

TEST(LfsLog, OverwriteDeadensOldCopy)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Timeout);
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Timeout);
    EXPECT_EQ(log.segments()[0].liveBytes, 0u);
    EXPECT_EQ(log.segments()[1].liveBytes, kBlockSize);
    log.checkInvariants();
}

TEST(LfsLog, DeleteDropsPendingAndDeadensSealed)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Timeout);
    log.writeBlock(1, 1, kBlockSize); // pending
    log.writeBlock(2, 0, kBlockSize); // pending, other file
    log.deleteFile(1);
    EXPECT_EQ(log.pendingBytes(), kBlockSize); // only file 2 remains
    EXPECT_EQ(log.segments()[0].liveBytes, 0u);
    EXPECT_FALSE(log.inodes().locate(1, 0).has_value());
    log.checkInvariants();
}

TEST(LfsLog, TruncateKillsTailBlocks)
{
    LfsLog log(smallConfig());
    for (std::uint32_t b = 0; b < 4; ++b)
        log.writeBlock(1, b, kBlockSize);
    log.seal(SealCause::Timeout);
    log.truncate(1, 2 * kBlockSize + 1); // keeps blocks 0..2
    EXPECT_TRUE(log.inodes().locate(1, 2).has_value());
    EXPECT_FALSE(log.inodes().locate(1, 3).has_value());
    EXPECT_EQ(log.segments()[0].liveBytes, 3 * kBlockSize);
    log.checkInvariants();
}

TEST(LfsLog, TruncateOfAnotherFileLeavesPendingBlocksIntact)
{
    // Regression: truncate used to move every surviving pending block
    // into a scratch vector before deciding whether the truncate
    // touched anything pending.  When it touched nothing, the scratch
    // vector was discarded and pending_ kept the moved-from blocks —
    // empty range sets with stale byte totals.  Unrelated truncates
    // silently wiped the open segment's dirty ranges.
    LfsLog log(smallConfig());
    log.writeBlock(9, 1, 819);
    ASSERT_EQ(log.pendingBytes(), 819u);

    log.truncate(3, 7425); // file 3 has nothing pending
    log.auditInvariants();
    EXPECT_EQ(log.pendingBytes(), 819u);

    // The pending data must still reach disk with its bytes.
    log.seal(SealCause::Fsync);
    EXPECT_EQ(log.stats().dataBytes, 819u);
    ASSERT_TRUE(log.inodes().locate(9, 1).has_value());
}

TEST(LfsLog, StatsDiskBytesAddUp)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, 2048);
    log.seal(SealCause::Fsync);
    const LogStats &stats = log.stats();
    EXPECT_EQ(stats.diskBytes(),
              stats.dataBytes + stats.metadataBytes +
                  stats.summaryBytes);
    EXPECT_EQ(stats.dataBytes, 2048u);
    EXPECT_EQ(stats.metadataBytes, kBlockSize);
    EXPECT_EQ(stats.summaryBytes, 512u);
}

TEST(LfsLog, SealCauseNames)
{
    EXPECT_EQ(sealCauseName(SealCause::Full), "full");
    EXPECT_EQ(sealCauseName(SealCause::Fsync), "fsync");
    EXPECT_EQ(sealCauseName(SealCause::Timeout), "timeout");
    EXPECT_EQ(sealCauseName(SealCause::Cleaner), "cleaner");
}

// ------------------------------------------------------------ cleaner

TEST(Cleaner, ReclaimsDeadSegments)
{
    LfsLog log(smallConfig(32));
    // Write two segments of data and delete everything.
    for (std::uint32_t b = 0; b < 14; ++b)
        log.writeBlock(1, b, kBlockSize);
    log.seal(SealCause::Timeout);
    log.deleteFile(1);

    Cleaner cleaner;
    const CleanResult result = cleaner.clean(log, 31, true);
    EXPECT_GE(result.segmentsReclaimed, 1u);
    EXPECT_EQ(result.liveBytesCopied, 0u); // nothing was live
    log.checkInvariants();
}

TEST(Cleaner, CopiesLiveDataForward)
{
    LfsLog log(smallConfig(32));
    for (std::uint32_t b = 0; b < 10; ++b)
        log.writeBlock(1, b, kBlockSize);
    log.seal(SealCause::Timeout);
    // Kill most, keep blocks 0 and 1 live.
    log.truncate(1, 2 * kBlockSize);

    Cleaner cleaner;
    const CleanResult result = cleaner.clean(log, 32, true);
    EXPECT_EQ(result.liveBytesCopied, 2 * kBlockSize);
    // The inode map now points into a cleaner segment.
    const auto address = log.inodes().locate(1, 0);
    ASSERT_TRUE(address.has_value());
    EXPECT_GT(address->segment, 0u);
    EXPECT_TRUE(log.segments()[0].reclaimed);
    EXPECT_GE(log.stats().cleanerSegments, 1u);
    log.checkInvariants();
}

TEST(Cleaner, MaybeCleanIdleAboveLowWater)
{
    LfsLog log(smallConfig(100));
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Timeout);
    Cleaner cleaner;
    const CleanResult result = cleaner.maybeClean(log);
    EXPECT_EQ(result.segmentsReclaimed, 0u);
}

TEST(Cleaner, UnboundedDiskNoopWithoutForce)
{
    LfsLog log(smallConfig(0));
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Timeout);
    log.deleteFile(1);
    Cleaner cleaner;
    EXPECT_EQ(cleaner.clean(log, 10).segmentsReclaimed, 0u);
}

// ----------------------------------------------------------- recovery

TEST(Recovery, RollForwardRebuildsInodeMap)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.writeBlock(1, 1, 2000);
    log.seal(SealCause::Timeout);
    log.writeBlock(2, 0, kBlockSize);
    log.seal(SealCause::Fsync);

    const RecoveryResult result = rollForward(log);
    EXPECT_TRUE(result.inodes == log.inodes());
    EXPECT_EQ(result.segmentsReplayed, 2u);
}

TEST(Recovery, UnsealedDataIsLost)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Timeout);
    log.writeBlock(2, 0, kBlockSize); // never sealed: lost in a crash

    const RecoveryResult result = rollForward(log);
    EXPECT_TRUE(result.inodes.locate(1, 0).has_value());
    EXPECT_FALSE(result.inodes.locate(2, 0).has_value());
}

TEST(Recovery, ReplaysDeletes)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Timeout);
    log.deleteFile(1);
    log.writeBlock(2, 0, kBlockSize); // carries the delete record
    log.seal(SealCause::Timeout);

    const RecoveryResult result = rollForward(log);
    EXPECT_TRUE(result.inodes == log.inodes());
    EXPECT_FALSE(result.inodes.locate(1, 0).has_value());
    EXPECT_GE(result.metaOpsReplayed, 1u);
}

TEST(Recovery, WriteDeleteRewriteWithinOneSegment)
{
    // The tricky interleaving: write A, delete the file, write B to
    // the same block, all before one seal.  Recovery must keep B.
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, 1000);
    log.deleteFile(1);
    log.writeBlock(1, 0, 2000);
    log.seal(SealCause::Timeout);

    const RecoveryResult result = rollForward(log);
    EXPECT_TRUE(result.inodes == log.inodes());
    ASSERT_TRUE(result.inodes.locate(1, 0).has_value());
}

TEST(Recovery, WriteThenDeleteWithinOneSegment)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, 1000);
    log.deleteFile(1);
    log.writeBlock(2, 0, 500);
    log.seal(SealCause::Timeout);

    const RecoveryResult result = rollForward(log);
    EXPECT_TRUE(result.inodes == log.inodes());
    EXPECT_FALSE(result.inodes.locate(1, 0).has_value());
}

TEST(Recovery, CheckpointShortensReplay)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Timeout);
    const Checkpoint checkpoint = log.takeCheckpoint();
    log.writeBlock(2, 0, kBlockSize);
    log.seal(SealCause::Timeout);

    const RecoveryResult result = rollForward(log, &checkpoint);
    EXPECT_TRUE(result.inodes == log.inodes());
    EXPECT_EQ(result.segmentsReplayed,
              log.segments().size() - checkpoint.nextSegment);
}

TEST(Recovery, AfterCleaningStillConsistent)
{
    LfsLog log(smallConfig(32));
    for (std::uint32_t b = 0; b < 10; ++b)
        log.writeBlock(1, b, kBlockSize);
    log.seal(SealCause::Timeout);
    log.truncate(1, 3 * kBlockSize);
    Cleaner cleaner;
    cleaner.clean(log, 32, true);
    // Persist the truncate record with a follow-up segment.
    log.writeBlock(3, 0, kBlockSize);
    log.seal(SealCause::Timeout);

    const RecoveryResult result = rollForward(log);
    EXPECT_TRUE(result.inodes == log.inodes());
}

TEST(LfsLog, WriteBlockRangeUnionsDisjointHalves)
{
    // Two disjoint halves staged into one open segment must occupy
    // the whole block, not max(half, half).
    LfsLog log(smallConfig());
    log.writeBlockRange(1, 0, 0, 2048);
    log.writeBlockRange(1, 0, 2048, 4096);
    EXPECT_EQ(log.pendingBytes(), 4096u);
    log.seal(SealCause::Timeout);
    EXPECT_EQ(log.segments().back().dataBytes, 4096u);
}

TEST(LfsLog, WriteBlockRangeOverlapCountsOnce)
{
    LfsLog log(smallConfig());
    log.writeBlockRange(1, 0, 0, 3000);
    log.writeBlockRange(1, 0, 1000, 2000); // fully inside
    EXPECT_EQ(log.pendingBytes(), 3000u);
}

TEST(LfsLog, FreeSegmentsTracksActive)
{
    LfsLog log(smallConfig(4));
    EXPECT_EQ(log.freeSegments(), 4u);
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Timeout);
    EXPECT_EQ(log.freeSegments(), 3u);
    EXPECT_EQ(log.activeSegments(), 1u);
    log.deleteFile(1);
    Cleaner cleaner;
    cleaner.clean(log, 4, true);
    EXPECT_EQ(log.freeSegments(), 4u);
}

TEST(LfsLog, SegmentUtilizationReflectsLiveFraction)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.writeBlock(1, 1, kBlockSize);
    log.seal(SealCause::Timeout);
    EXPECT_DOUBLE_EQ(log.segments()[0].utilization(), 1.0);
    log.writeBlock(1, 0, kBlockSize); // supersede half
    log.seal(SealCause::Timeout);
    EXPECT_DOUBLE_EQ(log.segments()[0].utilization(), 0.5);
}

} // namespace
} // namespace nvfs::lfs

