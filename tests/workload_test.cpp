/**
 * @file
 * Tests for the synthetic workload generators: structural validity,
 * determinism, budget adherence, dialect equivalence, and the
 * server-side op stream.
 */

#include <gtest/gtest.h>

#include "prep/converter.hpp"
#include "trace/validate.hpp"
#include "workload/generator.hpp"
#include "workload/server_workload.hpp"

namespace nvfs::workload {
namespace {

constexpr double kTestScale = 0.02;

TEST(Profiles, EightStandardProfiles)
{
    const auto profiles = standardProfiles(kTestScale);
    ASSERT_EQ(profiles.size(), 8u);
    for (int n = 1; n <= 8; ++n) {
        EXPECT_EQ(profiles[n - 1].index, n - 1);
        EXPECT_EQ(profiles[n - 1].name, "trace" + std::to_string(n));
    }
}

TEST(Profiles, BigSimTracesAreThreeAndFour)
{
    EXPECT_FALSE(isBigSimTrace(1));
    EXPECT_TRUE(isBigSimTrace(3));
    EXPECT_TRUE(isBigSimTrace(4));
    EXPECT_FALSE(isBigSimTrace(7));
    EXPECT_GT(standardProfile(3, kTestScale).bigSim.bytesShare, 0.5);
    EXPECT_DOUBLE_EQ(standardProfile(7, kTestScale).bigSim.bytesShare,
                     0.0);
}

TEST(Profiles, ScaleShrinksVolume)
{
    const auto full = standardProfile(7, 1.0);
    const auto small = standardProfile(7, 0.1);
    EXPECT_NEAR(static_cast<double>(small.totalWriteBytes),
                0.1 * static_cast<double>(full.totalWriteBytes),
                static_cast<double>(kMiB));
}

TEST(Generator, Deterministic)
{
    const TraceProfile profile = standardProfile(7, kTestScale);
    GeneratorOptions options;
    options.seed = 99;
    ClientTraceGenerator a(profile, options);
    ClientTraceGenerator b(profile, options);
    const auto ta = a.generate();
    const auto tb = b.generate();
    ASSERT_EQ(ta.events.size(), tb.events.size());
    for (std::size_t i = 0; i < ta.events.size(); ++i)
        EXPECT_EQ(ta.events[i], tb.events[i]);
}

TEST(Generator, DifferentSeedsDiffer)
{
    const TraceProfile profile = standardProfile(7, kTestScale);
    GeneratorOptions a, b;
    a.seed = 1;
    b.seed = 2;
    const auto ta = ClientTraceGenerator(profile, a).generate();
    const auto tb = ClientTraceGenerator(profile, b).generate();
    EXPECT_NE(ta.events.size(), tb.events.size());
}

class AllTracesValidate : public ::testing::TestWithParam<int>
{
};

TEST_P(AllTracesValidate, PassesStructuralValidation)
{
    const auto buffer =
        generateStandardTrace(GetParam(), kTestScale, false);
    const auto report = trace::validateTrace(buffer);
    EXPECT_TRUE(report.ok())
        << "trace " << GetParam() << ": "
        << (report.issues.empty() ? "" : report.issues[0].message);
    EXPECT_GT(buffer.events.size(), 100u);
}

TEST_P(AllTracesValidate, SpriteCompatAlsoValidates)
{
    const auto buffer =
        generateStandardTrace(GetParam(), kTestScale, true);
    const auto report = trace::validateTrace(buffer);
    EXPECT_TRUE(report.ok())
        << "trace " << GetParam() << ": "
        << (report.issues.empty() ? "" : report.issues[0].message);
}

INSTANTIATE_TEST_SUITE_P(Traces, AllTracesValidate,
                         ::testing::Range(1, 9));

TEST(Generator, WriteVolumeNearBudget)
{
    const TraceProfile profile = standardProfile(7, 0.05);
    GeneratorOptions options;
    ClientTraceGenerator gen(profile, options);
    gen.generate();
    const double written =
        static_cast<double>(gen.totals().writeBytes);
    const double budget =
        static_cast<double>(profile.totalWriteBytes);
    EXPECT_GT(written, 0.8 * budget);
    EXPECT_LT(written, 1.6 * budget);
}

TEST(Generator, ReadVolumeNearRatio)
{
    const TraceProfile profile = standardProfile(7, 0.05);
    GeneratorOptions options;
    ClientTraceGenerator gen(profile, options);
    gen.generate();
    const double ratio =
        static_cast<double>(gen.totals().readBytes) /
        static_cast<double>(gen.totals().writeBytes);
    EXPECT_GT(ratio, 0.7 * profile.readWriteRatio);
    EXPECT_LT(ratio, 1.4 * profile.readWriteRatio);
}

TEST(Generator, CompatDeductionMatchesExplicitVolume)
{
    // The same profile/seed generated in both dialects must carry the
    // same write volume once the compat trace is run through pass 1.
    const TraceProfile profile = standardProfile(5, kTestScale);
    GeneratorOptions explicit_opts, compat_opts;
    explicit_opts.seed = compat_opts.seed = 7;
    compat_opts.spriteCompat = true;

    const auto explicit_trace =
        ClientTraceGenerator(profile, explicit_opts).generate();
    const auto compat_trace =
        ClientTraceGenerator(profile, compat_opts).generate();

    const auto explicit_ops = prep::convertTrace(explicit_trace);
    prep::ConvertStats stats;
    const auto compat_ops = prep::convertTrace(compat_trace, &stats);

    const auto te = prep::totals(explicit_ops);
    const auto tc = prep::totals(compat_ops);
    // Identical byte volumes; the compat side was all deduced.
    EXPECT_EQ(te.writeBytes, tc.writeBytes);
    EXPECT_EQ(te.readBytes, tc.readBytes);
    EXPECT_GT(stats.deducedWriteBytes, 0u);
    EXPECT_GT(stats.deducedReadBytes, 0u);
}

TEST(Generator, EmitsAllActivityKinds)
{
    const TraceProfile profile = standardProfile(7, 0.05);
    GeneratorOptions options;
    ClientTraceGenerator gen(profile, options);
    const auto buffer = gen.generate();
    EXPECT_GT(gen.totals().deletes, 0u);
    EXPECT_GT(gen.totals().fsyncs, 0u);
    EXPECT_GT(gen.totals().migrations, 0u);

    bool saw_migrate = false;
    for (const auto &event : buffer.events)
        saw_migrate |= event.type == trace::EventType::Migrate;
    EXPECT_TRUE(saw_migrate);
}

TEST(Generator, EventsTimeSortedWithinDuration)
{
    const auto buffer = generateStandardTrace(3, kTestScale);
    TimeUs last = 0;
    for (const auto &event : buffer.events) {
        EXPECT_GE(event.time, last);
        last = event.time;
    }
    EXPECT_LE(last, buffer.header.duration);
}

TEST(FilePopulation, SizesClampedAndAligned)
{
    util::Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const Bytes size = sampleFileSize(rng, 24.0 * 1024, 1.0);
        EXPECT_GE(size, 512u);
        EXPECT_LE(size, 64u * 1024 * 1024);
        EXPECT_EQ(size % 512, 0u);
    }
}

TEST(FilePopulation, CreateAndDelete)
{
    FilePopulation files;
    util::Rng rng(2);
    files.seedSystemFiles(10, 8192, rng);
    EXPECT_EQ(files.systemCount(), 10u);
    const FileId id = files.create(FileClass::Temp, 3, 4096);
    EXPECT_EQ(id, 10u);
    EXPECT_EQ(files.at(id).owner, 3);
    files.markDeleted(id);
    EXPECT_TRUE(files.at(id).deleted);
}

// ------------------------------------------------------ server side

TEST(ServerWorkload, EightFileSystems)
{
    const auto profiles = standardFsProfiles(kTestScale);
    ASSERT_EQ(profiles.size(), 8u);
    EXPECT_EQ(profiles[0].name, "/user6");
    EXPECT_GT(profiles[0].transactionsPerHour, 0.0);
    EXPECT_EQ(profiles[0].fsyncsPerTransaction, 5);
    EXPECT_EQ(profiles[2].name, "/swap1");
    EXPECT_DOUBLE_EQ(profiles[2].dumpFsyncProb, 0.0); // never fsyncs
}

TEST(ServerWorkload, OpsSortedAndCoverAllFs)
{
    const auto profiles = standardFsProfiles(0.5);
    const auto ops = generateServerOps(profiles, 6 * kUsPerHour, 3);
    ASSERT_FALSE(ops.empty());
    TimeUs last = 0;
    std::set<FsId> seen;
    for (const auto &op : ops) {
        EXPECT_GE(op.time, last);
        last = op.time;
        seen.insert(op.fs);
        EXPECT_LT(op.fs, profiles.size());
    }
    EXPECT_GE(seen.size(), 6u); // nearly all file systems active
}

TEST(ServerWorkload, Deterministic)
{
    const auto profiles = standardFsProfiles(0.2);
    const auto a = generateServerOps(profiles, kUsPerHour, 5);
    const auto b = generateServerOps(profiles, kUsPerHour, 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].length, b[i].length);
    }
}

TEST(ServerWorkload, TpStreamPairsWritesWithFsyncs)
{
    auto profiles = standardFsProfiles(0.5);
    // Keep only /user6's TP stream.
    for (auto &p : profiles) {
        if (p.name != "/user6") {
            p.dumpsPerHour = 0;
            p.transactionsPerHour = 0;
            p.trickleIntervalS = 0;
        } else {
            p.dumpsPerHour = 0;
        }
    }
    const auto ops = generateServerOps(profiles, 2 * kUsPerHour, 11);
    std::uint64_t writes = 0, fsyncs = 0;
    for (const auto &op : ops) {
        if (op.kind == ServerOp::Kind::Write)
            ++writes;
        else
            ++fsyncs;
    }
    EXPECT_EQ(writes, fsyncs); // one fsync per TP write
    EXPECT_GT(fsyncs, 0u);
}

} // namespace
} // namespace nvfs::workload
