/**
 * @file
 * Property-based tests: randomized operation sequences checked against
 * reference models or structural invariants, parameterized over seeds
 * with TEST_P / INSTANTIATE_TEST_SUITE_P.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/block_cache.hpp"
#include "core/lifetime/lifetime.hpp"
#include "lfs/cleaner.hpp"
#include "lfs/log.hpp"
#include "lfs/recovery.hpp"
#include "prep/converter.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace nvfs {
namespace {

class SeededTest : public ::testing::TestWithParam<std::uint64_t>
{
};

// ----------------------------------------- IntervalSet vs. bitmap

using IntervalSeed = SeededTest;

TEST_P(IntervalSeed, IntervalSetRunsStayCanonical)
{
    // After arbitrary mutations the run list must remain sorted,
    // disjoint, non-adjacent (fully coalesced), and must sum to
    // totalBytes().
    util::Rng rng(GetParam());
    util::IntervalSet set;

    for (int step = 0; step < 400; ++step) {
        const Bytes begin = rng.uniformInt(0, 2000);
        const Bytes end = begin + rng.uniformInt(0, 47);
        if (rng.chance(0.6))
            set.insert(begin, end);
        else
            set.erase(begin, end);

        const auto runs = set.runs();
        Bytes total = 0;
        for (std::size_t i = 0; i < runs.size(); ++i) {
            ASSERT_LT(runs[i].begin, runs[i].end);
            total += runs[i].length();
            if (i > 0) {
                ASSERT_GT(runs[i].begin, runs[i - 1].end);
            }
        }
        ASSERT_EQ(total, set.totalBytes());
        ASSERT_EQ(runs.size(), set.runCount());
    }
}

TEST_P(IntervalSeed, IntervalSetExactBitmapEquivalence)
{
    util::Rng rng(GetParam() ^ 0xABCDEF);
    util::IntervalSet set;
    std::vector<bool> bitmap(1024, false);

    for (int step = 0; step < 300; ++step) {
        const Bytes begin = rng.uniformInt(0, 1000);
        const Bytes end =
            std::min<Bytes>(begin + rng.uniformInt(0, 63), 1024);
        const bool insert = rng.chance(0.6);
        if (insert)
            set.insert(begin, end);
        else
            set.erase(begin, end);
        for (Bytes i = begin; i < end && i < bitmap.size(); ++i)
            bitmap[i] = insert;

        // Compare total bytes within the bitmap's domain.
        Bytes expected = 0;
        for (const bool bit : bitmap)
            expected += bit ? 1 : 0;
        ASSERT_EQ(set.totalBytes(), expected) << "step " << step;

        // Spot-check an overlap query.
        const Bytes qb = rng.uniformInt(0, 1000);
        const Bytes qe = qb + rng.uniformInt(0, 100);
        Bytes overlap = 0;
        for (Bytes i = qb; i < qe && i < bitmap.size(); ++i)
            overlap += bitmap[i] ? 1 : 0;
        ASSERT_EQ(set.overlapBytes(qb, std::min<Bytes>(qe, 1024)),
                  overlap);
    }
}

TEST_P(IntervalSeed, IntervalMapConservesBytes)
{
    // Every byte assigned is either still mapped or was reported
    // displaced exactly once.
    util::Rng rng(GetParam() ^ 0x1234);
    util::IntervalMap<int> map;
    Bytes assigned = 0;
    Bytes displaced = 0;

    for (int step = 0; step < 300; ++step) {
        const Bytes begin = rng.uniformInt(0, 4000);
        const Bytes end = begin + 1 + rng.uniformInt(0, 127);
        assigned += end - begin;
        map.assign(begin, end, step,
                   [&](Bytes b, Bytes e, const int &) {
                       displaced += e - b;
                   });
        ASSERT_EQ(map.totalBytes() + displaced, assigned)
            << "step " << step;
    }
    map.clear([&](Bytes b, Bytes e, const int &) {
        displaced += e - b;
    });
    EXPECT_EQ(displaced, assigned);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSeed,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------- BlockCache vs. reference

using CacheSeed = SeededTest;

TEST_P(CacheSeed, LruMatchesReferenceModel)
{
    util::Rng rng(GetParam());
    cache::BlockCache cache(32);
    std::vector<cache::BlockId> reference; // front = LRU

    auto ref_touch = [&](const cache::BlockId &id) {
        for (auto it = reference.begin(); it != reference.end(); ++it) {
            if (*it == id) {
                reference.erase(it);
                break;
            }
        }
        reference.push_back(id);
    };

    for (int step = 0; step < 2000; ++step) {
        const cache::BlockId id{
            static_cast<FileId>(rng.uniformInt(0, 19)),
            static_cast<std::uint32_t>(rng.uniformInt(0, 3))};
        if (cache.contains(id)) {
            cache.touch(id, step);
            ref_touch(id);
        } else {
            if (cache.full()) {
                const auto victim = cache.chooseVictim(step);
                ASSERT_TRUE(victim.has_value());
                ASSERT_EQ(*victim, reference.front());
                cache.remove(*victim);
                reference.erase(reference.begin());
            }
            cache.insert(id, step);
            reference.push_back(id);
        }
        ASSERT_EQ(cache.size(), reference.size());
        if (!reference.empty()) {
            ASSERT_EQ(*cache.lruBlock(), reference.front());
        }
    }
}

TEST_P(CacheSeed, DirtyAccountingAlwaysConsistent)
{
    util::Rng rng(GetParam() ^ 0x77);
    cache::BlockCache cache(16);
    std::map<cache::BlockId, Bytes> dirty_model;

    for (int step = 0; step < 1500; ++step) {
        const cache::BlockId id{
            static_cast<FileId>(rng.uniformInt(0, 9)), 0};
        const int action = static_cast<int>(rng.uniformInt(0, 3));
        if (!cache.contains(id)) {
            if (cache.full()) {
                const auto victim = cache.chooseVictim(step);
                cache.remove(*victim);
                dirty_model.erase(*victim);
            }
            cache.insert(id, step);
        }
        switch (action) {
          case 0:
          case 1: {
            const Bytes b = rng.uniformInt(0, kBlockSize - 2);
            const Bytes e = b + 1 + rng.uniformInt(
                                        0, kBlockSize - b - 2);
            cache.markDirty(id, b, e, step);
            dirty_model[id] = cache.peek(id)->dirtyBytes();
            break;
          }
          case 2:
            cache.markClean(id);
            dirty_model.erase(id);
            break;
          case 3: {
            const Bytes cut = rng.uniformInt(0, kBlockSize - 1);
            cache.trimDirty(id, cut, kBlockSize);
            if (cache.peek(id)->isDirty())
                dirty_model[id] = cache.peek(id)->dirtyBytes();
            else
                dirty_model.erase(id);
            break;
          }
        }
        Bytes expected = 0;
        for (const auto &[bid, bytes] : dirty_model)
            expected += bytes;
        ASSERT_EQ(cache.dirtyBytes(), expected);
        ASSERT_EQ(cache.dirtyBlockCount(), dirty_model.size());
        ASSERT_EQ(cache.allDirtyBlocks().size(), dirty_model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheSeed,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ----------------------------------------------------- LFS invariants

using LfsSeed = SeededTest;

TEST_P(LfsSeed, RandomOpsKeepInvariantsAndRecover)
{
    util::Rng rng(GetParam());
    lfs::LfsConfig config;
    config.segmentBytes = 64 * kKiB;
    lfs::LfsLog log(config);

    for (int step = 0; step < 600; ++step) {
        const auto file = static_cast<FileId>(rng.uniformInt(1, 12));
        const int action = static_cast<int>(rng.uniformInt(0, 9));
        if (action < 6) {
            log.writeBlock(file,
                           static_cast<std::uint32_t>(
                               rng.uniformInt(0, 7)),
                           512 + rng.uniformInt(0, kBlockSize - 512));
        } else if (action < 7) {
            log.deleteFile(file);
        } else if (action < 8) {
            log.truncate(file, rng.uniformInt(0, 6 * kBlockSize));
        } else {
            log.seal(rng.chance(0.5) ? lfs::SealCause::Fsync
                                     : lfs::SealCause::Timeout);
        }
        if (step % 50 == 0)
            log.checkInvariants();
    }
    log.seal(lfs::SealCause::Shutdown);
    log.checkInvariants();

    const auto recovered = lfs::rollForward(log);
    EXPECT_TRUE(recovered.inodes == log.inodes());
}

TEST_P(LfsSeed, RecoveryFromCheckpointMatches)
{
    util::Rng rng(GetParam() ^ 0xBEEF);
    lfs::LfsConfig config;
    config.segmentBytes = 64 * kKiB;
    lfs::LfsLog log(config);

    lfs::Checkpoint checkpoint;
    for (int step = 0; step < 400; ++step) {
        const auto file = static_cast<FileId>(rng.uniformInt(1, 8));
        if (rng.chance(0.8)) {
            log.writeBlock(file,
                           static_cast<std::uint32_t>(
                               rng.uniformInt(0, 5)),
                           kBlockSize);
        } else if (rng.chance(0.5)) {
            log.deleteFile(file);
        } else {
            log.seal(lfs::SealCause::Timeout);
        }
        if (step == 200)
            checkpoint = log.takeCheckpoint();
    }
    log.seal(lfs::SealCause::Shutdown);
    const auto recovered = lfs::rollForward(log, &checkpoint);
    EXPECT_TRUE(recovered.inodes == log.inodes());
}

TEST_P(LfsSeed, CleanerPreservesFileMapUnderChurn)
{
    util::Rng rng(GetParam() ^ 0xC1EA);
    lfs::LfsConfig config;
    config.segmentBytes = 32 * kKiB;
    config.diskSegments = 64;
    lfs::LfsLog log(config);
    lfs::Cleaner cleaner;

    for (int step = 0; step < 500; ++step) {
        const auto file = static_cast<FileId>(rng.uniformInt(1, 6));
        log.writeBlock(file,
                       static_cast<std::uint32_t>(
                           rng.uniformInt(0, 3)),
                       kBlockSize);
        if (rng.chance(0.1))
            log.deleteFile(static_cast<FileId>(rng.uniformInt(1, 6)));
        if (rng.chance(0.05))
            log.seal(lfs::SealCause::Timeout);
        cleaner.maybeClean(log);
    }
    log.seal(lfs::SealCause::Shutdown);
    log.checkInvariants();
    // Cleaning must never lose the map: recovery still agrees.
    const auto recovered = lfs::rollForward(log);
    EXPECT_TRUE(recovered.inodes == log.inodes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LfsSeed,
                         ::testing::Values(3, 7, 31, 127, 8191));

// ------------------------------------------------ lifetime invariants

class LifetimeTraceTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(LifetimeTraceTest, FatesPartitionWrites)
{
    // For every standard trace and seed: the byte fates exactly
    // partition the written bytes, and the delay sweep is monotone.
    const auto [trace_number, seed] = GetParam();
    workload::GeneratorOptions options;
    options.seed = seed;
    workload::ClientTraceGenerator gen(
        workload::standardProfile(trace_number, 0.02), options);
    const auto buffer = gen.generate();
    const auto ops = prep::convertTrace(buffer);
    const auto life = core::analyzeLifetimes(ops);

    Bytes sum = 0;
    for (int f = 0; f < static_cast<int>(core::ByteFate::Count_); ++f)
        sum += life.fateBytes(static_cast<core::ByteFate>(f));
    EXPECT_EQ(sum, life.totalWritten);
    EXPECT_EQ(life.totalWritten, prep::totals(ops).writeBytes);

    double last = 101.0;
    for (const double minutes : {0.01, 0.1, 1.0, 10.0, 100.0, 1e4}) {
        const double traffic = life.netWriteTrafficPct(
            static_cast<TimeUs>(minutes * kUsPerMinute));
        EXPECT_LE(traffic, last + 1e-9);
        last = traffic;
    }
    // Even at infinite delay, called-back + concurrent + remaining
    // bytes are still traffic.
    const double floor_pct =
        100.0 *
        static_cast<double>(
            life.fateBytes(core::ByteFate::CalledBack) +
            life.fateBytes(core::ByteFate::Concurrent) +
            life.fateBytes(core::ByteFate::Remaining)) /
        static_cast<double>(life.totalWritten);
    EXPECT_NEAR(life.netWriteTrafficPct(kTimeInfinity / 2), floor_pct,
                1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    TracesAndSeeds, LifetimeTraceTest,
    ::testing::Combine(::testing::Values(1, 3, 7),
                       ::testing::Values(1u, 99u)));

} // namespace
} // namespace nvfs
