/**
 * @file
 * Error-path coverage: fatal() on malformed input (bad trace files,
 * bad unit strings) and panic() on internal misuse, exercised as
 * gtest death tests — a simulator that silently computes on corrupt
 * state is worse than one that stops.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/block_cache.hpp"
#include "core/sim/experiments.hpp"
#include "trace/stream.hpp"
#include "util/units.hpp"
#include "workload/profile.hpp"

namespace nvfs {
namespace {

TEST(ErrorHandling, BadMagicIsFatal)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "nvfs_bad_magic.trace";
    {
        std::ofstream out(path, std::ios::binary);
        const char junk[64] = "this is not a trace file at all";
        out.write(junk, sizeof(junk));
    }
    EXPECT_EXIT(trace::readTraceFile(path.string()),
                ::testing::ExitedWithCode(1), "bad magic");
    std::filesystem::remove(path);
}

TEST(ErrorHandling, TruncatedRecordIsFatal)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "nvfs_truncated.trace";
    {
        trace::TraceBuffer buffer;
        trace::Event event;
        event.type = trace::EventType::Delete;
        buffer.push(event);
        trace::writeTraceFile(path.string(), buffer);
        // Chop the last few bytes off.
        std::filesystem::resize_file(
            path, std::filesystem::file_size(path) - 5);
    }
    EXPECT_EXIT(trace::readTraceFile(path.string()),
                ::testing::ExitedWithCode(1), "truncated");
    std::filesystem::remove(path);
}

TEST(ErrorHandling, MissingFileIsFatal)
{
    EXPECT_EXIT(trace::readTraceFile("/nonexistent/nvfs.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ErrorHandling, BadUnitSuffixIsFatal)
{
    EXPECT_EXIT(util::parseBytes("12XB"),
                ::testing::ExitedWithCode(1), "unknown byte suffix");
    EXPECT_EXIT(util::parseDuration("5 fortnights"),
                ::testing::ExitedWithCode(1),
                "unknown duration suffix");
    EXPECT_EXIT(util::parseBytes("notanumber"),
                ::testing::ExitedWithCode(1), "cannot parse");
}

TEST(ErrorHandling, CacheMisusePanics)
{
    // panic() aborts (simulator bug, not user error).
    EXPECT_DEATH(
        {
            cache::BlockCache cache(1);
            cache.insert({1, 0}, 1);
            cache.insert({2, 0}, 2); // full: must evict first
        },
        "insert into full cache");
    EXPECT_DEATH(
        {
            cache::BlockCache cache(4);
            cache.touch({9, 9}, 1); // not resident
        },
        "not resident");
}

TEST(ErrorHandling, BadTraceNumberPanics)
{
    EXPECT_DEATH(workload::standardProfile(9, 1.0), "out of range");
    EXPECT_DEATH(workload::standardProfile(0, 1.0), "out of range");
}

TEST(OpsWithSeed, DistinctSeedsDistinctTraces)
{
    const auto a = core::opsWithSeed(7, 0.02, 1);
    const auto b = core::opsWithSeed(7, 0.02, 2);
    const auto a2 = core::opsWithSeed(7, 0.02, 1);
    EXPECT_EQ(a.ops.size(), a2.ops.size());
    EXPECT_NE(a.ops.size(), b.ops.size());
}

} // namespace
} // namespace nvfs
