/**
 * @file
 * Integration tests of the cluster simulator on small handcrafted op
 * streams with exactly predictable traffic.
 */

#include <gtest/gtest.h>

#include "core/client/cluster_sim.hpp"

namespace nvfs::core {
namespace {

using prep::Op;
using prep::OpType;

/** Small builder for handcrafted op streams. */
class StreamBuilder
{
  public:
    explicit StreamBuilder(std::uint32_t clients = 2)
    {
        stream_.clientCount = clients;
    }

    StreamBuilder &
    open(TimeUs t, ClientId c, FileId f, bool write, ProcId pid = 1)
    {
        Op op;
        op.time = t;
        op.client = c;
        op.pid = pid;
        op.file = f;
        op.type = OpType::Open;
        op.openForWrite = write;
        op.openForRead = !write;
        stream_.ops.push_back(op);
        return *this;
    }

    StreamBuilder &
    close(TimeUs t, ClientId c, FileId f, ProcId pid = 1)
    {
        Op op;
        op.time = t;
        op.client = c;
        op.pid = pid;
        op.file = f;
        op.type = OpType::Close;
        stream_.ops.push_back(op);
        return *this;
    }

    StreamBuilder &
    write(TimeUs t, ClientId c, FileId f, Bytes off, Bytes len,
          ProcId pid = 1)
    {
        Op op;
        op.time = t;
        op.client = c;
        op.pid = pid;
        op.file = f;
        op.offset = off;
        op.length = len;
        op.type = OpType::Write;
        stream_.ops.push_back(op);
        return *this;
    }

    StreamBuilder &
    read(TimeUs t, ClientId c, FileId f, Bytes off, Bytes len)
    {
        Op op;
        op.time = t;
        op.client = c;
        op.pid = 1;
        op.file = f;
        op.offset = off;
        op.length = len;
        op.type = OpType::Read;
        stream_.ops.push_back(op);
        return *this;
    }

    StreamBuilder &
    del(TimeUs t, ClientId c, FileId f)
    {
        Op op;
        op.time = t;
        op.client = c;
        op.file = f;
        op.type = OpType::Delete;
        stream_.ops.push_back(op);
        return *this;
    }

    StreamBuilder &
    fsync(TimeUs t, ClientId c, FileId f)
    {
        Op op;
        op.time = t;
        op.client = c;
        op.pid = 1;
        op.file = f;
        op.type = OpType::Fsync;
        stream_.ops.push_back(op);
        return *this;
    }

    StreamBuilder &
    migrate(TimeUs t, ClientId c, ProcId pid, ClientId target)
    {
        Op op;
        op.time = t;
        op.client = c;
        op.pid = pid;
        op.targetClient = target;
        op.type = OpType::Migrate;
        stream_.ops.push_back(op);
        return *this;
    }

    const prep::OpStream &stream() const { return stream_; }

  private:
    prep::OpStream stream_;
};

ClusterConfig
configFor(ModelKind kind)
{
    ClusterConfig config;
    config.model.kind = kind;
    config.model.volatileBytes = 8 * kMiB;
    config.model.nvramBytes = kMiB;
    return config;
}

TEST(ClusterSim, VolatileDelayedWriteBackFiresAt30s)
{
    StreamBuilder b;
    b.open(0, 0, 1, true)
        .write(secondsUs(1), 0, 1, 0, 4096)
        .close(secondsUs(2), 0, 1)
        // A dummy late op so the clock advances past 31 s.
        .read(secondsUs(60), 1, 2, 0, 100);
    ClusterSim sim(configFor(ModelKind::Volatile), 2);
    const Metrics m = sim.run(b.stream());
    EXPECT_EQ(m.serverWrites(WriteCause::DelayedWriteBack), 4096u);
    EXPECT_EQ(m.serverWrites(WriteCause::EndOfTrace), 0u);
}

TEST(ClusterSim, UnifiedAbsorbsDeletedData)
{
    StreamBuilder b;
    b.open(0, 0, 1, true)
        .write(secondsUs(1), 0, 1, 0, 8192)
        .close(secondsUs(2), 0, 1)
        .del(secondsUs(10), 0, 1);
    ClusterSim sim(configFor(ModelKind::Unified), 2);
    const Metrics m = sim.run(b.stream());
    EXPECT_EQ(m.totalServerWrites(), 0u);
    EXPECT_EQ(m.absorbedDeletedBytes, 8192u);
    EXPECT_EQ(m.appWriteBytes, 8192u);
}

TEST(ClusterSim, CrossClientOpenTriggersCallback)
{
    StreamBuilder b;
    b.open(0, 0, 1, true)
        .write(secondsUs(1), 0, 1, 0, 4096)
        .close(secondsUs(2), 0, 1)
        .open(secondsUs(5), 1, 1, false)
        .read(secondsUs(6), 1, 1, 0, 4096)
        .close(secondsUs(7), 1, 1);
    ClusterSim sim(configFor(ModelKind::Unified), 2);
    const Metrics m = sim.run(b.stream());
    EXPECT_EQ(m.serverWrites(WriteCause::Callback), 4096u);
    // The reader fetched the block from the server afterwards.
    EXPECT_EQ(m.serverReadBytes, 4096u);
}

TEST(ClusterSim, ConcurrentWriteSharingBypassesCaches)
{
    StreamBuilder b;
    b.open(0, 0, 1, true, 1)
        .write(secondsUs(1), 0, 1, 0, 1000, 1)
        .open(secondsUs(2), 1, 1, true, 2)
        // Caching now disabled: writes go straight to the server.
        .write(secondsUs(3), 0, 1, 0, 2000, 1)
        .write(secondsUs(4), 1, 1, 2000, 3000, 2)
        .close(secondsUs(5), 0, 1, 1)
        .close(secondsUs(6), 1, 1, 2);
    ClusterSim sim(configFor(ModelKind::Unified), 2);
    const Metrics m = sim.run(b.stream());
    EXPECT_EQ(m.serverWrites(WriteCause::Concurrent), 5000u);
    // The pre-sharing 1000 bytes were flushed when sharing began.
    EXPECT_EQ(m.serverWrites(WriteCause::Callback), 1000u);
    EXPECT_EQ(m.appWriteBytes, 6000u);
}

TEST(ClusterSim, MigrationFlushesProcessFiles)
{
    StreamBuilder b;
    b.open(0, 0, 1, true, 42)
        .write(secondsUs(1), 0, 1, 0, 4096, 42)
        .close(secondsUs(2), 0, 1, 42)
        .migrate(secondsUs(3), 0, 42, 1);
    ClusterSim sim(configFor(ModelKind::Unified), 2);
    const Metrics m = sim.run(b.stream());
    EXPECT_EQ(m.serverWrites(WriteCause::Migration), 4096u);
}

TEST(ClusterSim, MigrationIgnoresOtherProcesses)
{
    StreamBuilder b;
    b.open(0, 0, 1, true, 42)
        .write(secondsUs(1), 0, 1, 0, 4096, 42)
        .close(secondsUs(2), 0, 1, 42)
        .migrate(secondsUs(3), 0, 7, 1); // different pid
    ClusterSim sim(configFor(ModelKind::Unified), 2);
    const Metrics m = sim.run(b.stream());
    EXPECT_EQ(m.serverWrites(WriteCause::Migration), 0u);
    EXPECT_EQ(m.serverWrites(WriteCause::EndOfTrace), 4096u);
}

TEST(ClusterSim, RemainingDirtyCountsAtEndOfTrace)
{
    StreamBuilder b;
    b.open(0, 0, 1, true).write(1, 0, 1, 0, 4096).close(2, 0, 1);
    ClusterSim sim(configFor(ModelKind::Unified), 2);
    const Metrics m = sim.run(b.stream());
    EXPECT_EQ(m.serverWrites(WriteCause::EndOfTrace), 4096u);
}

TEST(ClusterSim, FsyncOnlyCostsInVolatileModel)
{
    auto build = [] {
        StreamBuilder b;
        b.open(0, 0, 1, true)
            .write(secondsUs(1), 0, 1, 0, 4096)
            .fsync(secondsUs(2), 0, 1)
            .close(secondsUs(3), 0, 1)
            .del(secondsUs(4), 0, 1);
        return b;
    };
    ClusterSim vol(configFor(ModelKind::Volatile), 2);
    const Metrics mv = vol.run(build().stream());
    EXPECT_EQ(mv.serverWrites(WriteCause::Fsync), 4096u);

    for (const auto kind :
         {ModelKind::WriteAside, ModelKind::Unified}) {
        ClusterSim sim(configFor(kind), 2);
        const Metrics m = sim.run(build().stream());
        EXPECT_EQ(m.totalServerWrites(), 0u) << modelKindName(kind);
    }
}

TEST(ClusterSim, TruncateShrinksAndAbsorbs)
{
    StreamBuilder b;
    b.open(0, 0, 1, true).write(1, 0, 1, 0, 2 * kBlockSize);
    Op trunc;
    trunc.time = 2;
    trunc.client = 0;
    trunc.file = 1;
    trunc.length = kBlockSize;
    trunc.type = OpType::Truncate;
    auto stream = b.stream();
    stream.ops.push_back(trunc);
    Op close;
    close.time = 3;
    close.client = 0;
    close.pid = 1;
    close.file = 1;
    close.type = OpType::Close;
    stream.ops.push_back(close);

    ClusterSim sim(configFor(ModelKind::Unified), 2);
    const Metrics m = sim.run(stream);
    EXPECT_EQ(m.absorbedDeletedBytes, kBlockSize);
    EXPECT_EQ(m.serverWrites(WriteCause::EndOfTrace), kBlockSize);
}

TEST(ClusterSim, AppByteConservation)
{
    StreamBuilder b;
    b.open(0, 0, 1, true)
        .write(1, 0, 1, 0, 5000)
        .write(2, 0, 1, 5000, 3000)
        .read(3, 0, 1, 0, 8000)
        .close(4, 0, 1);
    ClusterSim sim(configFor(ModelKind::Volatile), 2);
    const Metrics m = sim.run(b.stream());
    EXPECT_EQ(m.appWriteBytes, 8000u);
    EXPECT_EQ(m.appReadBytes, 8000u);
}

} // namespace
} // namespace nvfs::core
