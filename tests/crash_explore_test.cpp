/**
 * @file
 * Crash-schedule explorer tests (nvfs::crash): site census over every
 * durable transition, per-mode crashes with their loss semantics, the
 * durability oracle (including the two deliberate-corruption tests
 * that prove it is not vacuous), recovery idempotence, quarantining
 * recovery's damage accounting, the NVRAM write-buffer ledger, env
 * knob parsing, and delta-debug shrinking.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "check/shrink.hpp"
#include "crash/explore.hpp"
#include "crash/registry.hpp"
#include "lfs/log.hpp"
#include "lfs/recovery.hpp"
#include "nvram/crash_site.hpp"
#include "nvram/device.hpp"
#include "server/file_server.hpp"

namespace nvfs::lfs {

/** Test-only peer: corrupts durable state to prove the crash oracle
 *  catches mutations (a vacuously-passing checker would miss both). */
class CrashTestPeer
{
  public:
    /** Point one Write journal record of segment `id` at a block the
     *  segment never held — recovery silently drops the block. */
    static void
    corruptJournalRecord(LfsLog &log, std::uint32_t id)
    {
        for (JournalRecord &record : log.journals_.at(id)) {
            if (record.kind == JournalRecord::Kind::Write) {
                record.block += 9999;
                return;
            }
        }
        FAIL() << "segment " << id << " has no Write journal record";
    }

    /** Fail segment `id`'s summary checksum (media corruption). */
    static void
    corruptSealedSegment(LfsLog &log, std::uint32_t id)
    {
        log.segments_.at(id).corrupt = true;
    }
};

} // namespace nvfs::lfs

namespace nvfs {
namespace {

using crash::CrashSiteRegistry;
using lfs::CrashTestPeer;
using nvram::CrashAction;
using nvram::CrashSiteKind;
using workload::ServerOp;

lfs::LfsConfig
smallConfig()
{
    lfs::LfsConfig config;
    config.segmentBytes = 64 * kKiB;
    return config;
}

std::uint64_t
countOf(const CrashSiteRegistry &registry, CrashSiteKind kind)
{
    return registry.sitesByKind()[static_cast<std::size_t>(kind)];
}

/** A small, time-sorted server workload with writes and fsyncs. */
std::vector<ServerOp>
smallWorkload()
{
    std::vector<ServerOp> ops;
    TimeUs t = kUsPerSecond;
    for (FileId file = 1; file <= 3; ++file) {
        for (std::uint32_t block = 0; block < 4; ++block) {
            ops.push_back({t, 0, file,
                           static_cast<Bytes>(block) * kBlockSize,
                           kBlockSize, ServerOp::Kind::Write});
            t += kUsPerSecond;
        }
        ops.push_back({t, 0, file, 0, 0, ServerOp::Kind::Fsync});
        t += kUsPerSecond;
    }
    return ops;
}

// ------------------------------------------------------- site census

TEST(CrashSiteCensus, CountsEveryDurableTransition)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    log.setCrashHook(&registry);
    registry.track(log, nullptr);

    log.writeBlock(1, 0, kBlockSize);             // JournalAppend
    log.writeBlock(1, 1, kBlockSize);             // JournalAppend
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync)); // Begin+2*Inode+Commit
    log.deleteFile(1);                            // JournalAppend
    log.writeBlock(2, 0, kBlockSize);             // JournalAppend
    log.truncate(2, 0);                           // JournalAppend
    log.takeCheckpoint(); // Checkpoint + Begin+Commit (journal-only)

    EXPECT_EQ(countOf(registry, CrashSiteKind::JournalAppend), 5u);
    EXPECT_EQ(countOf(registry, CrashSiteKind::SealBegin), 2u);
    EXPECT_EQ(countOf(registry, CrashSiteKind::InodeUpdate), 2u);
    EXPECT_EQ(countOf(registry, CrashSiteKind::SealCommit), 2u);
    EXPECT_EQ(countOf(registry, CrashSiteKind::Checkpoint), 1u);
    EXPECT_EQ(countOf(registry, CrashSiteKind::DevicePut), 0u);
    EXPECT_EQ(registry.sitesSeen(), 12u);
    EXPECT_FALSE(registry.crash().has_value());
    EXPECT_FALSE(registry.dead());
}

TEST(CrashSiteCensus, CountsDevicePuts)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    nvram::NvramDevice device;
    device.setCrashHook(&registry);
    registry.track(log, &device);

    EXPECT_TRUE(device.put(7, kBlockSize));
    EXPECT_TRUE(device.put(8, kBlockSize));
    EXPECT_EQ(countOf(registry, CrashSiteKind::DevicePut), 2u);
}

TEST(CrashSiteCensus, SnapshotsInodesAtEverySealCommit)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    log.setCrashHook(&registry);
    registry.track(log, nullptr);

    log.writeBlock(1, 0, kBlockSize);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    EXPECT_TRUE(registry.tracked().front().sealedSnapshot ==
                log.inodes());

    log.writeBlock(1, 1, kBlockSize);
    // Unsealed: the snapshot still reflects the first commit only.
    EXPECT_EQ(registry.tracked().front().sealedSnapshot.blockCount(),
              1u);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    EXPECT_EQ(registry.tracked().front().sealedSnapshot.blockCount(),
              2u);
}

// ------------------------------------------------- per-mode crashes

TEST(CrashModes, PowerFailAtJournalAppendLosesOnlyThatWrite)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    log.setCrashHook(&registry);
    registry.track(log, nullptr);

    log.writeBlock(1, 0, kBlockSize); // site 1
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync)); // sites 2..4

    registry.armCrash(5);
    log.writeBlock(1, 1, kBlockSize); // crashes here, write lost
    ASSERT_TRUE(registry.crash().has_value());
    EXPECT_EQ(registry.crash()->kind, CrashSiteKind::JournalAppend);
    EXPECT_EQ(registry.crash()->action, CrashAction::PowerFail);
    EXPECT_TRUE(log.crashed());
    EXPECT_EQ(log.pendingBytes(), 0u);

    // Post-crash operations are no-ops on the dead host.
    log.writeBlock(2, 0, kBlockSize);
    EXPECT_EQ(log.pendingBytes(), 0u);
    EXPECT_FALSE(log.seal(lfs::SealCause::Fsync));

    EXPECT_EQ(crash::verifyDurability(registry), std::nullopt);
}

TEST(CrashModes, PowerFailAtSealBeginDropsTheOpenSegment)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    log.setCrashHook(&registry);
    registry.track(log, nullptr);

    log.writeBlock(1, 0, kBlockSize); // site 1
    registry.armCrash(2);             // the SealBegin
    EXPECT_FALSE(log.seal(lfs::SealCause::Fsync));
    ASSERT_TRUE(registry.crash().has_value());
    EXPECT_EQ(registry.crash()->kind, CrashSiteKind::SealBegin);
    EXPECT_TRUE(log.segments().empty());

    // The registry froze the pending set before the seal cleared it.
    const auto &fs = registry.tracked().front();
    ASSERT_EQ(fs.pendingAtCrash.size(), 1u);
    EXPECT_EQ(fs.pendingAtCrash.front(),
              (std::pair<FileId, std::uint32_t>{1, 0}));

    EXPECT_EQ(crash::verifyDurability(registry), std::nullopt);
}

TEST(CrashModes, TornAtSealCommitMarksTheSegment)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    log.setCrashHook(&registry);
    registry.track(log, nullptr);

    log.writeBlock(1, 0, kBlockSize);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync)); // sites 2..4
    log.writeBlock(1, 1, kBlockSize);             // site 5
    registry.armCrash(8); // second seal's SealCommit
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    ASSERT_TRUE(registry.crash().has_value());
    EXPECT_EQ(registry.crash()->kind, CrashSiteKind::SealCommit);
    EXPECT_EQ(registry.crash()->action, CrashAction::Torn);
    EXPECT_EQ(registry.crash()->detail, log.segments().back().id);
    EXPECT_TRUE(log.segments().back().torn);

    // Strict recovery ends before the torn segment: only the first
    // commit's block is durable, exactly the oracle's snapshot.
    const auto strict = lfs::rollForward(log);
    EXPECT_TRUE(strict.stoppedAtTornSegment);
    EXPECT_EQ(strict.inodes.blockCount(), 1u);
    EXPECT_EQ(crash::verifyDurability(registry), std::nullopt);
}

TEST(CrashModes, TornAtInodeUpdateMarksTheSegment)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    log.setCrashHook(&registry);
    registry.track(log, nullptr);

    log.writeBlock(1, 0, kBlockSize); // site 1
    registry.armCrash(3);             // first InodeUpdate of the seal
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    ASSERT_TRUE(registry.crash().has_value());
    EXPECT_EQ(registry.crash()->kind, CrashSiteKind::InodeUpdate);
    EXPECT_TRUE(log.segments().back().torn);
    EXPECT_EQ(crash::verifyDurability(registry), std::nullopt);
}

TEST(CrashModes, PowerFailAtCheckpointYieldsEmptySnapshot)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    log.setCrashHook(&registry);
    registry.track(log, nullptr);

    log.writeBlock(1, 0, kBlockSize); // site 1
    registry.armCrash(2);             // the Checkpoint site
    const lfs::Checkpoint cp = log.takeCheckpoint();
    ASSERT_TRUE(registry.crash().has_value());
    EXPECT_EQ(registry.crash()->kind, CrashSiteKind::Checkpoint);
    EXPECT_EQ(cp.nextSegment, 0u);
    EXPECT_EQ(cp.inodes.blockCount(), 0u);
    EXPECT_EQ(crash::verifyDurability(registry), std::nullopt);
}

TEST(CrashModes, DropAtDevicePutNeverCommits)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    nvram::NvramDevice device;
    device.setCrashHook(&registry);
    registry.track(log, &device);

    EXPECT_TRUE(device.put(7, kBlockSize)); // site 1
    registry.armCrash(2);
    EXPECT_FALSE(device.put(8, kBlockSize)); // dropped mid-write
    ASSERT_TRUE(registry.crash().has_value());
    EXPECT_EQ(registry.crash()->kind, CrashSiteKind::DevicePut);
    EXPECT_EQ(registry.crash()->action, CrashAction::Drop);
    EXPECT_EQ(registry.crash()->detail, 8u);
    EXPECT_TRUE(device.holds(7)); // previous contents intact
    EXPECT_FALSE(device.holds(8));

    // Dead host: later puts never happen and count no sites.
    EXPECT_FALSE(device.put(9, kBlockSize));
    EXPECT_EQ(registry.sitesSeen(), 2u);
}

// --------------------------------------- recovery idempotence (sat 2)

TEST(Recovery, RollForwardIsIdempotentOnACrashedLog)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    log.setCrashHook(&registry);
    registry.track(log, nullptr);

    log.writeBlock(1, 0, kBlockSize);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    log.writeBlock(1, 1, kBlockSize);
    log.writeBlock(2, 0, kBlockSize);
    registry.armCrash(8); // second seal's second InodeUpdate
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    ASSERT_TRUE(log.segments().back().torn);

    const auto first = lfs::rollForward(log);
    const auto second = lfs::rollForward(log);
    EXPECT_TRUE(first == second);
    EXPECT_TRUE(first.inodes == second.inodes);

    const lfs::RecoveryOptions quarantine{true};
    const auto q1 = lfs::rollForward(log, nullptr, quarantine);
    const auto q2 = lfs::rollForward(log, nullptr, quarantine);
    EXPECT_TRUE(q1 == q2);
    EXPECT_TRUE(q1.report == q2.report);
}

// ------------------------------------- quarantining recovery report

TEST(Recovery, QuarantineSkipsDamagedSegmentAndReportsLoss)
{
    lfs::LfsLog log(smallConfig());
    // Segment 0: file 1, blocks 0-1.
    log.writeBlock(1, 0, kBlockSize);
    log.writeBlock(1, 1, kBlockSize);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    // Segment 1: a delete of file 1 riding with file 2, block 0.
    log.deleteFile(1);
    log.writeBlock(2, 0, kBlockSize);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    // Segment 2: file 3, block 0.
    log.writeBlock(3, 0, kBlockSize);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));

    CrashTestPeer::corruptSealedSegment(log, 1);

    // Strict recovery must abort at the corrupt segment.
    const auto strict = lfs::rollForward(log);
    EXPECT_TRUE(strict.stoppedAtTornSegment);
    EXPECT_EQ(strict.inodes.blockCount(), 2u); // segment 0 only

    // Quarantine skips it, keeps going, and accounts for the damage.
    const auto skipped =
        lfs::rollForward(log, nullptr, lfs::RecoveryOptions{true});
    EXPECT_FALSE(skipped.stoppedAtTornSegment);
    EXPECT_EQ(skipped.report.segmentsScanned, 3u);
    EXPECT_EQ(skipped.report.segmentsQuarantined, 1u);
    EXPECT_EQ(skipped.report.blocksLost, 1u);   // file 2, block 0
    EXPECT_EQ(skipped.report.metaOpsLost, 1u);  // the delete
    // File 1's blocks survive (the delete was lost with segment 1)
    // and segment 2's block is recovered past the damage.
    EXPECT_EQ(skipped.inodes.blockCount(), 3u);
    EXPECT_EQ(skipped.segmentsReplayed, 2u);
}

// --------------------------------- oracle mutation detection (sat 3)

TEST(OracleMutationDetection, FlagsACorruptedJournalRecord)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    log.setCrashHook(&registry);
    registry.track(log, nullptr);

    log.writeBlock(1, 0, kBlockSize);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    log.writeBlock(2, 0, kBlockSize);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    ASSERT_EQ(crash::verifyDurability(registry), std::nullopt);

    CrashTestPeer::corruptJournalRecord(log,
                                        log.segments().back().id);
    const auto violation = crash::verifyDurability(registry);
    ASSERT_TRUE(violation.has_value());
    EXPECT_NE(violation->find("diverges"), std::string::npos)
        << *violation;
}

TEST(OracleMutationDetection, FlagsACorruptedSealedSegment)
{
    CrashSiteRegistry registry;
    lfs::LfsLog log(smallConfig());
    log.setCrashHook(&registry);
    registry.track(log, nullptr);

    log.writeBlock(1, 0, kBlockSize);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    log.writeBlock(2, 0, kBlockSize);
    ASSERT_TRUE(log.seal(lfs::SealCause::Fsync));
    ASSERT_EQ(crash::verifyDurability(registry), std::nullopt);

    CrashTestPeer::corruptSealedSegment(log, 0);
    const auto violation = crash::verifyDurability(registry);
    ASSERT_TRUE(violation.has_value());
}

// --------------------------------------------- NVRAM ledger coverage

TEST(ServerNvramLedger, UnbufferedServerHasNoDevice)
{
    server::FileServer server({"/fs"}, server::ServerConfig{});
    EXPECT_EQ(server.nvramDevice(0), nullptr);
}

TEST(ServerNvramLedger, ReconcilesStagedTagsAfterSeals)
{
    server::ServerConfig config;
    config.nvramBufferBytes = 256 * kKiB;
    config.lfs.segmentBytes = 64 * kKiB;
    server::FileServer server({"/fs"}, config);
    server.run(smallWorkload());

    nvram::NvramDevice *device = server.nvramDevice(0);
    ASSERT_NE(device, nullptr);
    EXPECT_GT(device->writeAccesses(), 0u);
    // The shutdown drain sealed everything; every staged tag has been
    // reconciled away.
    EXPECT_TRUE(device->tags().empty());
}

// ----------------------------------------------- end-to-end explore

TEST(Explore, BufferedServerSurvivesEveryCrashSite)
{
    crash::ExploreConfig config;
    config.server.nvramBufferBytes = 256 * kKiB;
    config.server.lfs.segmentBytes = 64 * kKiB;
    config.shrinkOnFailure = false;

    const auto result = crash::explore(smallWorkload(), config);
    EXPECT_GT(result.sitesTotal, 0u);
    EXPECT_EQ(result.crashesExplored, result.sitesTotal);
    EXPECT_TRUE(result.violations.empty())
        << result.violations.front().what;
    // Torn seals produce quarantine accounting across the sweep.
    EXPECT_GT(result.segmentsQuarantined, 0u);
}

TEST(Explore, UnbufferedServerSurvivesEveryCrashSite)
{
    crash::ExploreConfig config;
    config.server.lfs.segmentBytes = 64 * kKiB;
    config.shrinkOnFailure = false;

    const auto result = crash::explore(smallWorkload(), config);
    EXPECT_GT(result.sitesTotal, 0u);
    EXPECT_EQ(result.crashesExplored, result.sitesTotal);
    EXPECT_TRUE(result.violations.empty())
        << result.violations.front().what;
}

TEST(Explore, UnreachedArmedSiteIsAViolation)
{
    crash::ExploreConfig config;
    config.server.lfs.segmentBytes = 64 * kKiB;
    config.shrinkOnFailure = false;

    const auto verdict =
        crash::exploreOne(smallWorkload(), config, 1000000);
    EXPECT_FALSE(verdict.crashed);
    ASSERT_TRUE(verdict.violation.has_value());
    EXPECT_NE(verdict.violation->what.find("never reached"),
              std::string::npos);
}

// -------------------------------------------------------- env knobs

TEST(Explore, CrashSitesEnvSelectsExplicitSites)
{
    ::setenv("NVFS_CRASH_SITES", "2,4,4", 1);
    crash::ExploreConfig config;
    config.server.lfs.segmentBytes = 64 * kKiB;
    config.shrinkOnFailure = false;
    const auto result = crash::explore(smallWorkload(), config);
    ::unsetenv("NVFS_CRASH_SITES");
    EXPECT_EQ(result.crashesExplored, 2u); // deduplicated
    EXPECT_TRUE(result.violations.empty());
}

TEST(Explore, CrashSampleEnvSamplesSites)
{
    ::setenv("NVFS_CRASH_SAMPLE", "3", 1);
    crash::ExploreConfig config;
    config.server.lfs.segmentBytes = 64 * kKiB;
    config.shrinkOnFailure = false;
    const auto result = crash::explore(smallWorkload(), config);
    ::unsetenv("NVFS_CRASH_SAMPLE");
    ASSERT_GT(result.sitesTotal, 3u);
    EXPECT_EQ(result.crashesExplored, 3u);
    EXPECT_TRUE(result.violations.empty());
}

TEST(ExploreDeathTest, MalformedCrashSitesIsFatal)
{
    ::setenv("NVFS_CRASH_SITES", "2,banana", 1);
    crash::ExploreConfig config;
    config.server.lfs.segmentBytes = 64 * kKiB;
    EXPECT_EXIT(crash::explore(smallWorkload(), config),
                ::testing::ExitedWithCode(1), "banana");
    ::unsetenv("NVFS_CRASH_SITES");
}

TEST(ExploreDeathTest, ConflictingSiteKnobsAreFatal)
{
    ::setenv("NVFS_CRASH_SITES", "2", 1);
    ::setenv("NVFS_CRASH_SAMPLE", "3", 1);
    crash::ExploreConfig config;
    config.server.lfs.segmentBytes = 64 * kKiB;
    EXPECT_EXIT(crash::explore(smallWorkload(), config),
                ::testing::ExitedWithCode(1), "at most one");
    ::unsetenv("NVFS_CRASH_SITES");
    ::unsetenv("NVFS_CRASH_SAMPLE");
}

// -------------------------------------------------- delta shrinking

TEST(DeltaShrink, MinimizesToTheSingleCulprit)
{
    std::vector<int> items(20);
    for (int i = 0; i < 20; ++i)
        items[static_cast<std::size_t>(i)] = i + 1;
    const auto shrunk = check::deltaShrink(
        items, [](const std::vector<int> &candidate) {
            return std::find(candidate.begin(), candidate.end(), 13) !=
                   candidate.end();
        });
    ASSERT_EQ(shrunk.size(), 1u);
    EXPECT_EQ(shrunk.front(), 13);
}

TEST(DeltaShrink, KeepsInteractingPair)
{
    std::vector<int> items(16);
    for (int i = 0; i < 16; ++i)
        items[static_cast<std::size_t>(i)] = i;
    const auto shrunk = check::deltaShrink(
        items, [](const std::vector<int> &candidate) {
            const bool a = std::find(candidate.begin(),
                                     candidate.end(),
                                     3) != candidate.end();
            const bool b = std::find(candidate.begin(),
                                     candidate.end(),
                                     11) != candidate.end();
            return a && b;
        });
    ASSERT_EQ(shrunk.size(), 2u);
    EXPECT_EQ(shrunk[0], 3);
    EXPECT_EQ(shrunk[1], 11);
}

} // namespace
} // namespace nvfs
