/**
 * @file
 * Unit tests for the block-cache substrate: resident-set management,
 * dirty tracking, the LRU ordering, and all four replacement policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/block_cache.hpp"
#include "cache/policy.hpp"

namespace nvfs::cache {
namespace {

BlockId
id(FileId file, std::uint32_t index = 0)
{
    return {file, index};
}

TEST(BlockCache, InsertContainsRemove)
{
    BlockCache cache(4);
    EXPECT_FALSE(cache.contains(id(1)));
    cache.insert(id(1), 10);
    EXPECT_TRUE(cache.contains(id(1)));
    EXPECT_EQ(cache.size(), 1u);
    const CacheBlock block = cache.remove(id(1));
    EXPECT_EQ(block.id, id(1));
    EXPECT_FALSE(cache.contains(id(1)));
}

TEST(BlockCache, FullAndCapacity)
{
    BlockCache cache(2);
    cache.insert(id(1), 1);
    EXPECT_FALSE(cache.full());
    cache.insert(id(2), 2);
    EXPECT_TRUE(cache.full());
    EXPECT_EQ(cache.capacityBlocks(), 2u);
}

TEST(BlockCache, UnboundedNeverFull)
{
    BlockCache cache(0);
    for (std::uint32_t i = 0; i < 100; ++i)
        cache.insert(id(i), i);
    EXPECT_FALSE(cache.full());
    EXPECT_EQ(cache.size(), 100u);
}

TEST(BlockCache, LruOrderFollowsTouches)
{
    BlockCache cache(3);
    cache.insert(id(1), 1);
    cache.insert(id(2), 2);
    cache.insert(id(3), 3);
    EXPECT_EQ(*cache.lruBlock(), id(1));
    cache.touch(id(1), 4);
    EXPECT_EQ(*cache.lruBlock(), id(2));
    EXPECT_EQ(cache.lruAccessTime(), 2);
}

TEST(BlockCache, DirtyAccounting)
{
    BlockCache cache(4);
    cache.insert(id(1), 1);
    cache.markDirty(id(1), 0, 100, 5);
    EXPECT_EQ(cache.dirtyBytes(), 100u);
    EXPECT_EQ(cache.dirtyBlockCount(), 1u);
    cache.markDirty(id(1), 50, 200, 6); // overlaps: 200 total
    EXPECT_EQ(cache.dirtyBytes(), 200u);
    EXPECT_EQ(cache.peek(id(1))->dirtySince, 5);
    cache.markClean(id(1));
    EXPECT_EQ(cache.dirtyBytes(), 0u);
    EXPECT_EQ(cache.dirtyBlockCount(), 0u);
    EXPECT_FALSE(cache.peek(id(1))->isDirty());
}

TEST(BlockCache, TrimDirtyPartialAndFull)
{
    BlockCache cache(4);
    cache.insert(id(1), 1);
    cache.markDirty(id(1), 0, 1000, 2);
    EXPECT_EQ(cache.trimDirty(id(1), 500, 1000), 500u);
    EXPECT_EQ(cache.dirtyBytes(), 500u);
    EXPECT_TRUE(cache.peek(id(1))->isDirty());
    EXPECT_EQ(cache.trimDirty(id(1), 0, 500), 500u);
    EXPECT_FALSE(cache.peek(id(1))->isDirty());
    EXPECT_EQ(cache.dirtyBlockCount(), 0u);
}

TEST(BlockCache, DirtyOlderThanWalksInOrder)
{
    BlockCache cache(8);
    for (std::uint32_t i = 0; i < 5; ++i) {
        cache.insert(id(i), i * 10);
        cache.markDirty(id(i), 0, 10, i * 10);
    }
    const auto old = cache.dirtyOlderThan(20);
    ASSERT_EQ(old.size(), 3u);
    EXPECT_EQ(old[0], id(0));
    EXPECT_EQ(old[2], id(2));
    EXPECT_EQ(cache.allDirtyBlocks().size(), 5u);
}

TEST(BlockCache, DirtyOrderSurvivesCleanAndRedirty)
{
    BlockCache cache(8);
    cache.insert(id(1), 1);
    cache.insert(id(2), 2);
    cache.markDirty(id(1), 0, 10, 10);
    cache.markDirty(id(2), 0, 10, 20);
    cache.markClean(id(1));
    cache.markDirty(id(1), 0, 10, 30); // re-dirty: moves to back
    const auto all = cache.allDirtyBlocks();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0], id(2));
    EXPECT_EQ(all[1], id(1));
}

TEST(BlockCache, BlocksOfFileAscending)
{
    BlockCache cache(8);
    cache.insert(id(7, 3), 1);
    cache.insert(id(7, 1), 2);
    cache.insert(id(8, 0), 3);
    const auto blocks = cache.blocksOfFile(7);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0].index, 1u);
    EXPECT_EQ(blocks[1].index, 3u);
    EXPECT_TRUE(cache.blocksOfFile(9).empty());
}

TEST(BlockCache, DirtyBlocksOfFile)
{
    BlockCache cache(8);
    cache.insert(id(7, 0), 1);
    cache.insert(id(7, 1), 1);
    cache.markDirty(id(7, 1), 0, 10, 2);
    const auto dirty = cache.dirtyBlocksOfFile(7);
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0].index, 1u);
}

TEST(BlockCache, LruCleanBlockSkipsDirty)
{
    BlockCache cache(3);
    cache.insert(id(1), 1);
    cache.insert(id(2), 2);
    cache.markDirty(id(1), 0, 10, 3);
    EXPECT_EQ(*cache.lruCleanBlock(), id(2));
    cache.markDirty(id(2), 0, 10, 4);
    EXPECT_FALSE(cache.lruCleanBlock().has_value());
}

TEST(BlockCache, LruCleanBlockTracksTransitions)
{
    // Exercise the lazily-enabled clean-ordering maintenance across
    // every dirty-state transition after the first lruCleanBlock()
    // call flips tracking on.
    BlockCache cache(8);
    cache.insert(id(1), 1);
    cache.insert(id(2), 2);
    cache.insert(id(3), 3);
    EXPECT_EQ(*cache.lruCleanBlock(), id(1)); // enables tracking

    // markDirty is also an access: 1 leaves the clean list AND moves
    // to the MRU end of the overall LRU.
    cache.markDirty(id(1), 0, 10, 4);
    EXPECT_EQ(*cache.lruCleanBlock(), id(2));

    cache.touch(id(2), 5); // clean block to MRU end
    EXPECT_EQ(*cache.lruCleanBlock(), id(3));

    // dirty -> clean rejoins at its LRU slot: lru_ is now [3, 1, 2],
    // so 1 must land between 3 and 2, not at either end.
    cache.markClean(id(1));
    EXPECT_EQ(*cache.lruCleanBlock(), id(3));
    cache.remove(id(3)); // clean removal drops its entry
    EXPECT_EQ(*cache.lruCleanBlock(), id(1));

    cache.markDirty(id(1), 0, 10, 6);
    cache.remove(id(1)); // dirty removal must not touch the clean list
    EXPECT_EQ(*cache.lruCleanBlock(), id(2));

    cache.insertOrdered(id(4), 1); // oldest access -> new clean LRU
    EXPECT_EQ(*cache.lruCleanBlock(), id(4));

    cache.markDirty(id(2), 0, 10, 7);
    cache.markDirty(id(4), 0, 10, 8);
    EXPECT_FALSE(cache.lruCleanBlock().has_value());

    cache.trimDirty(id(4), 0, 10); // fully trimmed -> clean again
    EXPECT_EQ(*cache.lruCleanBlock(), id(4));
}

TEST(BlockCache, LruCleanBlockMatchesReferenceScan)
{
    // Randomized churn: after every operation the maintained clean
    // ordering must agree with a from-scratch scan for the clean
    // block with the oldest access time.  Strictly increasing clock
    // keeps the reference unambiguous.
    BlockCache cache(0);
    const auto reference = [&cache]() -> std::optional<BlockId> {
        std::optional<BlockId> best;
        TimeUs best_time = 0;
        for (const BlockId &bid : cache.allBlocks()) {
            const CacheBlock *block = cache.peek(bid);
            if (block->isDirty())
                continue;
            if (!best || block->lastAccess < best_time) {
                best = bid;
                best_time = block->lastAccess;
            }
        }
        return best;
    };

    std::uint64_t state = 12345;
    const auto next = [&state] {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    };

    // Advance the clock by 100 per op: plain ops use `now` itself and
    // insertOrdered picks from (now-100, now), so every access time in
    // the cache is unique and the reference scan has no ties.
    TimeUs now = 1000;
    for (int i = 0; i < 2000; ++i) {
        const BlockId bid{static_cast<FileId>(next() % 16),
                          static_cast<std::uint32_t>(next() % 4)};
        now += 100;
        switch (next() % 6) {
        case 0:
            if (!cache.contains(bid))
                cache.insert(bid, now);
            break;
        case 1:
            if (!cache.contains(bid))
                cache.insertOrdered(bid, now - 1 - next() % 99);
            break;
        case 2:
            if (cache.contains(bid))
                cache.touch(bid, now);
            break;
        case 3:
            if (cache.contains(bid))
                cache.markDirty(bid, 0, 100, now);
            break;
        case 4:
            if (cache.contains(bid))
                cache.markClean(bid);
            break;
        case 5:
            if (cache.contains(bid))
                cache.remove(bid);
            break;
        }
        ASSERT_EQ(cache.lruCleanBlock(), reference())
            << "divergence after op " << i;
    }
}

TEST(BlockCache, InsertOrderedKeepsAccessOrder)
{
    BlockCache cache(8);
    cache.insert(id(1), 10);
    cache.insert(id(2), 20);
    cache.insert(id(3), 30);
    // Insert with an access time between 10 and 20.
    cache.insertOrdered(id(4), 15);
    EXPECT_EQ(*cache.lruBlock(), id(1));
    cache.remove(id(1));
    EXPECT_EQ(*cache.lruBlock(), id(4));
    // Oldest of all goes to the front.
    cache.insertOrdered(id(5), 1);
    EXPECT_EQ(*cache.lruBlock(), id(5));
    // Youngest of all goes to the back.
    cache.insertOrdered(id(6), 99);
    cache.remove(id(5));
    cache.remove(id(4));
    cache.remove(id(2));
    cache.remove(id(3));
    EXPECT_EQ(*cache.lruBlock(), id(6));
}

// ------------------------------------------------------------ policies

TEST(LruPolicy, EvictsLeastRecentlyUsed)
{
    BlockCache cache(3, makePolicy(PolicyKind::Lru));
    cache.insert(id(1), 1);
    cache.insert(id(2), 2);
    cache.insert(id(3), 3);
    cache.touch(id(1), 4);
    EXPECT_EQ(*cache.chooseVictim(5), id(2));
}

TEST(RandomPolicy, VictimIsResident)
{
    util::Rng rng(5);
    BlockCache cache(16, makePolicy(PolicyKind::Random, &rng));
    std::set<BlockId> resident;
    for (std::uint32_t i = 0; i < 16; ++i) {
        cache.insert(id(i), i);
        resident.insert(id(i));
    }
    for (int round = 0; round < 200; ++round) {
        const auto victim = cache.chooseVictim(100);
        ASSERT_TRUE(victim.has_value());
        EXPECT_TRUE(resident.count(*victim));
    }
}

TEST(RandomPolicy, SpreadsChoices)
{
    util::Rng rng(6);
    BlockCache cache(8, makePolicy(PolicyKind::Random, &rng));
    for (std::uint32_t i = 0; i < 8; ++i)
        cache.insert(id(i), i);
    std::set<BlockId> seen;
    for (int round = 0; round < 200; ++round)
        seen.insert(*cache.chooseVictim(100));
    EXPECT_GT(seen.size(), 4u);
}

TEST(ClockPolicy, GivesSecondChance)
{
    BlockCache cache(3, makePolicy(PolicyKind::Clock));
    cache.insert(id(1), 1);
    cache.insert(id(2), 2);
    cache.insert(id(3), 3);
    // All referenced once (on insert); first sweep clears bits and
    // the second returns the first unreferenced block.
    const auto victim = cache.chooseVictim(4);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(cache.contains(*victim));
}

TEST(ClockPolicy, RecentlyTouchedSurvives)
{
    BlockCache cache(2, makePolicy(PolicyKind::Clock));
    cache.insert(id(1), 1);
    cache.insert(id(2), 2);
    // First victim clears reference bits.
    const auto first = cache.chooseVictim(3);
    cache.remove(*first);
    cache.insert(id(3), 3);
    cache.touch(id(3), 4);
    const auto second = cache.chooseVictim(5);
    ASSERT_TRUE(second.has_value());
    EXPECT_NE(*second, id(3)); // freshly referenced block survives
}

/** Fixed-schedule oracle for omniscient policy tests. */
class StubOracle : public NextModifyOracle
{
  public:
    std::map<BlockId, TimeUs> next;

    TimeUs
    nextModify(const BlockId &block, TimeUs) const override
    {
        auto it = next.find(block);
        return it == next.end() ? kTimeInfinity : it->second;
    }
};

TEST(OmniscientPolicy, EvictsFurthestNextModify)
{
    StubOracle oracle;
    oracle.next[id(1)] = 100;  // modified soon: keep
    oracle.next[id(2)] = 9000; // modified late: evict
    oracle.next[id(3)] = 500;
    BlockCache cache(3,
                     makePolicy(PolicyKind::Omniscient, nullptr,
                                &oracle));
    cache.insert(id(1), 1);
    cache.insert(id(2), 2);
    cache.insert(id(3), 3);
    EXPECT_EQ(*cache.chooseVictim(10), id(2));
}

TEST(OmniscientPolicy, NeverModifiedEvictedFirst)
{
    StubOracle oracle;
    oracle.next[id(1)] = 100;
    // id(2) has no future modification at all.
    BlockCache cache(2,
                     makePolicy(PolicyKind::Omniscient, nullptr,
                                &oracle));
    cache.insert(id(1), 1);
    cache.insert(id(2), 2);
    EXPECT_EQ(*cache.chooseVictim(10), id(2));
}

TEST(OmniscientPolicy, RefreshesOnAccess)
{
    StubOracle oracle;
    oracle.next[id(1)] = 100;
    oracle.next[id(2)] = 200;
    BlockCache cache(2,
                     makePolicy(PolicyKind::Omniscient, nullptr,
                                &oracle));
    cache.insert(id(1), 1);
    cache.insert(id(2), 2);
    EXPECT_EQ(*cache.chooseVictim(10), id(2));
    // After time passes id(1)'s next modify, its key refreshes on
    // access; with no further writes it becomes the far-future block.
    oracle.next[id(1)] = kTimeInfinity;
    cache.touch(id(1), 150);
    EXPECT_EQ(*cache.chooseVictim(150), id(1));
}

TEST(Policies, EmptyCacheHasNoVictim)
{
    for (const auto kind :
         {PolicyKind::Lru, PolicyKind::Clock}) {
        BlockCache cache(2, makePolicy(kind));
        EXPECT_FALSE(cache.chooseVictim(1).has_value());
    }
}

TEST(Policies, Names)
{
    EXPECT_EQ(policyName(PolicyKind::Lru), "LRU");
    EXPECT_EQ(policyName(PolicyKind::Random), "random");
    EXPECT_EQ(policyName(PolicyKind::Clock), "clock");
    EXPECT_EQ(policyName(PolicyKind::Omniscient), "omniscient");
}

} // namespace
} // namespace nvfs::cache
