/**
 * @file
 * Tests for the composed experiments: the disk queue simulation, the
 * server-write sink and the end-to-end client→server pipeline, and
 * the cleaner running inside the file server.
 */

#include <gtest/gtest.h>

#include "core/sim/experiments.hpp"
#include "disk/queue_sim.hpp"
#include "server/file_server.hpp"

namespace nvfs {
namespace {

// ------------------------------------------------------- queue sim

TEST(DiskQueue, NoWritesMeansServiceOnlyPlusQueueing)
{
    disk::QueueSimParams params;
    params.readsPerSecond = 1.0; // nearly idle
    params.writeBytesPerSecond = 0.0;
    params.durationSeconds = 600.0;
    const auto result = disk::simulateDiskQueue(params);
    EXPECT_GT(result.reads, 0u);
    EXPECT_EQ(result.writes, 0u);
    // At 1 req/s against ~24 ms service, queueing is negligible.
    EXPECT_LT(result.readSlowdownPct(), 10.0);
}

TEST(DiskQueue, BiggerWritesDelayReads)
{
    disk::QueueSimParams params;
    params.readsPerSecond = 6.0;
    params.writeBytesPerSecond = 60.0 * 1024;
    params.durationSeconds = 1800.0;

    params.writeBytes = 64 * kKiB;
    const auto small = disk::simulateDiskQueue(params);
    params.writeBytes = kMiB;
    const auto big = disk::simulateDiskQueue(params);

    EXPECT_GT(big.meanReadResponseMs, small.meanReadResponseMs);
    // Same byte throughput: fewer, larger write requests.
    EXPECT_LT(big.writes, small.writes);
    EXPECT_NEAR(big.diskUtilization, small.diskUtilization, 0.05);
}

TEST(DiskQueue, Deterministic)
{
    disk::QueueSimParams params;
    params.durationSeconds = 300.0;
    const auto a = disk::simulateDiskQueue(params);
    const auto b = disk::simulateDiskQueue(params);
    EXPECT_DOUBLE_EQ(a.meanReadResponseMs, b.meanReadResponseMs);
    EXPECT_EQ(a.reads, b.reads);
}

// ---------------------------------------------------------- sink

class RecordingSink : public core::ServerWriteSink
{
  public:
    struct Event
    {
        TimeUs time;
        FileId file;
        Bytes bytes;
        core::WriteCause cause;
    };

    std::vector<Event> writes;
    std::vector<std::pair<TimeUs, FileId>> fsyncs;

    void
    onServerWrite(TimeUs now, FileId file, std::uint32_t, Bytes bytes,
                  core::WriteCause cause) override
    {
        writes.push_back({now, file, bytes, cause});
    }

    void
    onFsync(TimeUs now, FileId file) override
    {
        fsyncs.emplace_back(now, file);
    }
};

TEST(ServerSink, SeesEveryByteTheMetricsCount)
{
    const auto &ops = core::standardOps(7, 0.02);
    RecordingSink sink;
    core::ModelConfig model;
    model.kind = core::ModelKind::Volatile;
    model.volatileBytes = 4 * kMiB;
    model.sink = &sink;
    const auto metrics = core::runClientSim(ops, model);

    Bytes sink_bytes = 0;
    TimeUs last = 0;
    for (const auto &event : sink.writes) {
        sink_bytes += event.bytes;
        EXPECT_GE(event.time, last);
        last = event.time;
    }
    // The sink sees everything except concurrent write-through
    // (reported by the cluster sim) — with the volatile model those
    // are included too, so totals match exactly.
    EXPECT_EQ(sink_bytes, metrics.totalServerWrites());
    EXPECT_GT(sink.fsyncs.size(), 0u);
}

TEST(ServerSink, NvramClientsSendNoFsyncs)
{
    const auto &ops = core::standardOps(7, 0.02);
    RecordingSink sink;
    core::ModelConfig model;
    model.kind = core::ModelKind::Unified;
    model.volatileBytes = 4 * kMiB;
    model.nvramBytes = kMiB;
    model.sink = &sink;
    core::runClientSim(ops, model);
    EXPECT_TRUE(sink.fsyncs.empty());
}

// ------------------------------------------------------ end to end

TEST(EndToEnd, ClientNvramReducesServerDiskWrites)
{
    const auto &ops = core::standardOps(7, 0.05);

    core::ModelConfig volatile_clients;
    volatile_clients.kind = core::ModelKind::Volatile;
    volatile_clients.volatileBytes = 8 * kMiB;
    const auto base = core::runEndToEnd(ops, volatile_clients);

    core::ModelConfig nvram_clients = volatile_clients;
    nvram_clients.kind = core::ModelKind::Unified;
    nvram_clients.nvramBytes = kMiB;
    const auto nvram = core::runEndToEnd(ops, nvram_clients);

    EXPECT_LT(nvram.client.totalServerWrites(),
              base.client.totalServerWrites());
    EXPECT_LT(nvram.server.diskWrites(), base.server.diskWrites());
    // NVRAM clients never bother the server with fsyncs.
    EXPECT_EQ(nvram.server.fsyncs, 0u);
    EXPECT_GT(base.server.fsyncs, 0u);
}

TEST(EndToEnd, ServerSeesExactlyTheClientTraffic)
{
    const auto &ops = core::standardOps(1, 0.02);
    core::ModelConfig model;
    model.kind = core::ModelKind::Unified;
    model.volatileBytes = 8 * kMiB;
    model.nvramBytes = kMiB;
    const auto result = core::runEndToEnd(ops, model);
    EXPECT_EQ(result.server.arrivedBytes,
              result.client.totalServerWrites());
    // Everything that arrived eventually reaches the disk; repeated
    // writes of the same block within one staging window coalesce in
    // the server cache, so disk data can be slightly below arrivals.
    EXPECT_LE(result.server.log.dataBytes, result.server.arrivedBytes);
    EXPECT_GT(static_cast<double>(result.server.log.dataBytes),
              0.98 * static_cast<double>(result.server.arrivedBytes));
}

// -------------------------------------------- server-side cleaner

TEST(ServerCleaner, BoundedDiskStaysWithinCapacity)
{
    workload::FsProfile profile;
    profile.name = "/churn";
    profile.dumpsPerHour = 400.0;
    profile.smallDumpMeanBytes = 96.0 * 1024;
    profile.smallDumpSigma = 0.4; // keep per-file live data small
    const auto ops = workload::generateServerOps(
        {profile}, 4 * kUsPerHour, 3);

    server::ServerConfig config;
    config.lfs.diskSegments = 64; // 32 MB: forces cleaning
    config.lfs.cleanLowWater = 16;
    config.lfs.cleanHighWater = 32;
    server::FileServer server({"/churn"}, config);
    // Route every dump onto a small rotating set of files so old
    // versions keep dying and the cleaner has space to reclaim.
    auto mutated = ops;
    for (std::size_t i = 0; i < mutated.size(); ++i)
        mutated[i].file = 1 + static_cast<FileId>(i % 16);
    server.run(mutated);
    const auto &log = server.log(0);
    EXPECT_LE(log.activeSegments(), config.lfs.diskSegments);
    EXPECT_GT(log.stats().cleanerSegments, 0u);
    log.checkInvariants();
}

} // namespace
} // namespace nvfs
