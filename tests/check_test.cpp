/**
 * @file
 * Tests for the nvfs::check subsystem: structural audits on the core
 * data structures (including proof that corruption is detected), the
 * NVFS_AUDIT hook in the cluster simulator, and the differential fuzz
 * driver that replays randomized op streams through the extent and
 * legacy engines across all three client models.
 */

#include <gtest/gtest.h>

#include "cache/block_cache.hpp"
#include "check/fuzz.hpp"
#include "core/client/cluster_sim.hpp"
#include "util/audit.hpp"
#include "util/flat_map.hpp"
#include "util/interval_set.hpp"

namespace nvfs::cache {

/** Test-only peer: corrupts cache internals to prove audits fire. */
class AuditTestPeer
{
  public:
    static void corruptDirtyBytes(BlockCache &cache)
    {
        ++cache.dirtyBytes_;
    }

    static void corruptLruTail(BlockCache &cache)
    {
        cache.lru_.tail = cache.lru_.head;
    }

    static void leakIndexEntry(BlockCache &cache)
    {
        const BlockId bogus{kNoFile - 1, 12345};
        cache.index_[bogus] = 0;
    }
};

} // namespace nvfs::cache

namespace nvfs::check {
namespace {

using cache::BlockCache;
using cache::BlockId;

// ----------------------------------------------------- audits (clean)

TEST(Audits, HealthyStructuresPass)
{
    util::IntervalSet set;
    set.insert(0, 100);
    set.insert(200, 300);
    EXPECT_NO_THROW(set.auditInvariants());

    util::FlatMap<std::uint64_t, int, util::SplitMix64Hash> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map[k] = static_cast<int>(k);
    for (std::uint64_t k = 0; k < 100; k += 3)
        map.erase(k);
    EXPECT_NO_THROW(map.auditInvariants());
}

TEST(Audits, HealthyCachePasses)
{
    BlockCache cache(16);
    for (std::uint32_t b = 0; b < 40; ++b) {
        while (cache.full()) {
            const auto victim =
                cache.chooseVictim(static_cast<TimeUs>(b));
            ASSERT_TRUE(victim.has_value());
            cache.remove(*victim);
        }
        const BlockId id{1, b};
        cache.insert(id, static_cast<TimeUs>(b));
        if (b % 3 == 0)
            cache.markDirty(id, 0, 100, static_cast<TimeUs>(b));
    }
    EXPECT_NO_THROW(cache.auditInvariants());
}

// ------------------------------------------- audits (corruption fires)

TEST(Audits, CorruptedDirtyAccountingThrows)
{
    BlockCache cache(16);
    cache.insert({1, 0}, 0);
    cache.markDirty({1, 0}, 0, 100, 0);
    EXPECT_NO_THROW(cache.auditInvariants());

    cache::AuditTestPeer::corruptDirtyBytes(cache);
    EXPECT_THROW(cache.auditInvariants(), util::AuditError);
}

TEST(Audits, CorruptedLruListThrows)
{
    BlockCache cache(16);
    cache.insert({1, 0}, 0);
    cache.insert({1, 1}, 1);
    cache::AuditTestPeer::corruptLruTail(cache);
    EXPECT_THROW(cache.auditInvariants(), util::AuditError);
}

TEST(Audits, DanglingIndexEntryThrows)
{
    BlockCache cache(16);
    cache.insert({1, 0}, 0);
    cache::AuditTestPeer::leakIndexEntry(cache);
    EXPECT_THROW(cache.auditInvariants(), util::AuditError);
}

TEST(Audits, AuditErrorNamesTheStructure)
{
    BlockCache cache(16);
    cache.insert({1, 0}, 0);
    cache::AuditTestPeer::corruptDirtyBytes(cache);
    try {
        cache.auditInvariants();
        FAIL() << "audit should have thrown";
    } catch (const util::AuditError &e) {
        EXPECT_EQ(e.where(), "BlockCache");
    }
}

// ------------------------------------------------- ClusterSim hook

TEST(AuditHook, CleanRunAuditsWithoutFailing)
{
    FuzzConfig config;
    config.opsPerRun = 1500;
    config.auditEvery = 16;
    const prep::OpStream ops = generateOps(config, 7);

    core::ClusterConfig cluster;
    cluster.model.volatileBytes = config.volatileBytes;
    cluster.model.nvramBytes = config.nvramBytes;
    cluster.model.kind = core::ModelKind::Unified;
    cluster.auditEvery = 16;
    core::ClusterSim sim(cluster, ops.clientCount);
    EXPECT_NO_THROW(sim.run(ops));
}

// ------------------------------------------------ differential fuzzer

TEST(Fuzz, GenerateOpsIsDeterministicAndValid)
{
    FuzzConfig config;
    config.opsPerRun = 500;
    const prep::OpStream a = generateOps(config, 3);
    const prep::OpStream b = generateOps(config, 3);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    TimeUs last = 0;
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
        EXPECT_EQ(a.ops[i], b.ops[i]);
        EXPECT_GE(a.ops[i].time, last);
        last = a.ops[i].time;
        EXPECT_LT(a.ops[i].client, config.clients);
    }
    const prep::OpStream c = generateOps(config, 4);
    EXPECT_FALSE(a.ops.size() == c.ops.size() &&
                 a.ops[10] == c.ops[10]);
}

TEST(Fuzz, TenThousandOpsBothEnginesZeroFailures)
{
    // The PR's acceptance bar: 10k randomized ops through extent and
    // legacy engines, all three models, audits on, zero failures.
    FuzzConfig config;
    config.opsPerRun = 10000;
    config.auditEvery = 32;
    config.seed = 2026;
    const prep::OpStream ops = generateOps(config, config.seed);
    EXPECT_EQ(runDifferential(ops, config), std::nullopt);
}

TEST(Fuzz, CampaignReportsRunsAndOps)
{
    FuzzConfig config;
    config.opsPerRun = 300;
    config.auditEvery = 8;
    const FuzzResult result = fuzz(config, 4);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.runs, 4u);
    EXPECT_GE(result.opsExecuted, 4 * 300u);
}

TEST(Fuzz, DescribeOpsDumpsEveryOp)
{
    FuzzConfig config;
    config.opsPerRun = 50;
    const prep::OpStream ops = generateOps(config, 11);
    const std::string text = describeOps(ops);
    EXPECT_FALSE(text.empty());
    std::size_t lines = 0;
    for (const char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, ops.ops.size());
}

} // namespace
} // namespace nvfs::check
