/**
 * @file
 * Tests for the extension features beyond the paper's core results:
 * client crash/recovery (Section 4), the block-level consistency
 * protocol ([21]), the FFS/NFS/Prestoserve baseline, and the network
 * cost model.
 */

#include <gtest/gtest.h>

#include "core/client/cluster_sim.hpp"
#include "core/client/unified_model.hpp"
#include "core/client/volatile_model.hpp"
#include "core/client/write_aside_model.hpp"
#include "core/sim/experiments.hpp"
#include "ffs/ffs_server.hpp"
#include "net/network_model.hpp"
#include "nvram/cost.hpp"

namespace nvfs {
namespace {

using core::Metrics;
using core::ModelConfig;
using core::ModelKind;
using core::WriteCause;

// ------------------------------------------------- crash semantics

class CrashTest : public ::testing::Test
{
  protected:
    Metrics metrics;
    core::FileSizeMap sizes;
    util::Rng rng{1};

    ModelConfig
    config(ModelKind kind)
    {
        ModelConfig c;
        c.kind = kind;
        c.volatileBytes = 8 * kBlockSize;
        c.nvramBytes = 4 * kBlockSize;
        return c;
    }
};

TEST_F(CrashTest, VolatileModelLosesDirtyData)
{
    sizes[1] = 8192;
    core::VolatileModel model(config(ModelKind::Volatile), metrics,
                              sizes, rng);
    model.write(1, 0, 8192, 1);
    model.crash(2);
    EXPECT_EQ(metrics.lostDirtyBytes, 8192u);
    EXPECT_EQ(metrics.totalServerWrites(), 0u);
    EXPECT_EQ(model.dirtyBytes(), 0u);
    EXPECT_EQ(model.cache().size(), 0u); // everything gone
}

TEST_F(CrashTest, WriteAsideModelRecoversFromNvram)
{
    sizes[1] = 8192;
    core::WriteAsideModel model(config(ModelKind::WriteAside),
                                metrics, sizes, rng);
    model.write(1, 0, 8192, 1);
    model.crash(2);
    EXPECT_EQ(metrics.lostDirtyBytes, 0u);
    EXPECT_EQ(metrics.serverWrites(WriteCause::Recovery), 8192u);
    EXPECT_EQ(model.dirtyBytes(), 0u);
    model.checkInvariants();
}

TEST_F(CrashTest, UnifiedModelRecoversAndKeepsCleanNvramBlocks)
{
    sizes[1] = 4096;
    sizes[2] = 4096;
    core::UnifiedModel model(config(ModelKind::Unified), metrics,
                             sizes, rng);
    model.write(1, 0, 4096, 1); // dirty in NVRAM
    // Fill volatile, then place a clean block in NVRAM via reads.
    for (FileId f = 10; f < 19; ++f) {
        sizes[f] = 4096;
        model.read(f, 0, 4096, 2);
    }
    const auto clean_nvram_before =
        model.nvramCache().size() - model.nvramCache().dirtyBlockCount();
    model.crash(3);
    EXPECT_EQ(metrics.serverWrites(WriteCause::Recovery), 4096u);
    EXPECT_EQ(metrics.lostDirtyBytes, 0u);
    // Volatile emptied; NVRAM survivors stay resident (now clean).
    EXPECT_EQ(model.volatileCache().size(), 0u);
    EXPECT_GE(model.nvramCache().size(), clean_nvram_before);
    model.checkInvariants();
}

TEST(CrashInjection, ClusterAppliesScheduledCrashes)
{
    // One client writes; it crashes before the 30 s write-back.
    prep::OpStream ops;
    ops.clientCount = 2;
    prep::Op open;
    open.time = 0;
    open.client = 0;
    open.pid = 1;
    open.file = 1;
    open.type = prep::OpType::Open;
    open.openForWrite = true;
    ops.ops.push_back(open);
    prep::Op write = open;
    write.time = secondsUs(1);
    write.type = prep::OpType::Write;
    write.length = 4096;
    ops.ops.push_back(write);
    prep::Op close = open;
    close.time = secondsUs(2);
    close.type = prep::OpType::Close;
    ops.ops.push_back(close);
    prep::Op late = open;
    late.time = secondsUs(10);
    late.client = 1;
    late.file = 2;
    late.type = prep::OpType::Open;
    late.openForRead = true;
    late.openForWrite = false;
    ops.ops.push_back(late);
    prep::Op late_close = late;
    late_close.time = secondsUs(11);
    late_close.type = prep::OpType::Close;
    ops.ops.push_back(late_close);

    for (const auto kind :
         {ModelKind::Volatile, ModelKind::Unified}) {
        core::ClusterConfig config;
        config.model.kind = kind;
        config.model.volatileBytes = kMiB;
        config.model.nvramBytes = kMiB;
        config.crashes = {{secondsUs(5), 0}};
        core::ClusterSim sim(config, 2);
        const Metrics m = sim.run(ops);
        if (kind == ModelKind::Volatile) {
            EXPECT_EQ(m.lostDirtyBytes, 4096u);
            EXPECT_EQ(m.totalServerWrites(), 0u);
        } else {
            EXPECT_EQ(m.lostDirtyBytes, 0u);
            EXPECT_EQ(m.serverWrites(WriteCause::Recovery), 4096u);
        }
    }
}

// -------------------------------------------- block-level callbacks

TEST(BlockCallbacks, PartialReadRecallsOnlyTouchedBlocks)
{
    prep::OpStream ops;
    ops.clientCount = 2;
    auto push = [&](prep::Op op) { ops.ops.push_back(op); };
    prep::Op base;
    base.client = 0;
    base.pid = 1;
    base.file = 1;

    prep::Op open = base;
    open.time = 0;
    open.type = prep::OpType::Open;
    open.openForWrite = true;
    push(open);
    prep::Op write = base;
    write.time = 1;
    write.type = prep::OpType::Write;
    write.length = 4 * kBlockSize; // 4 dirty blocks
    push(write);
    prep::Op close = base;
    close.time = 2;
    close.type = prep::OpType::Close;
    push(close);

    // Client 1 opens and reads only the first block.
    prep::Op open2 = base;
    open2.time = 3;
    open2.client = 1;
    open2.pid = 2;
    open2.type = prep::OpType::Open;
    open2.openForRead = true;
    push(open2);
    prep::Op read = base;
    read.time = 4;
    read.client = 1;
    read.pid = 2;
    read.type = prep::OpType::Read;
    read.length = kBlockSize;
    push(read);
    prep::Op close2 = open2;
    close2.time = 5;
    close2.type = prep::OpType::Close;
    push(close2);
    // The file dies before anything else forces a flush.
    prep::Op del = base;
    del.time = 6;
    del.type = prep::OpType::Delete;
    push(del);

    core::ClusterConfig config;
    config.model.kind = ModelKind::Unified;
    config.model.volatileBytes = kMiB;
    config.model.nvramBytes = kMiB;

    core::ClusterSim whole(config, 2);
    const Metrics whole_metrics = whole.run(ops);
    EXPECT_EQ(whole_metrics.serverWrites(WriteCause::Callback),
              4 * kBlockSize);

    config.blockLevelCallbacks = true;
    core::ClusterSim block(config, 2);
    const Metrics block_metrics = block.run(ops);
    EXPECT_EQ(block_metrics.serverWrites(WriteCause::Callback),
              kBlockSize);
    // The other three blocks died in the NVRAM.
    EXPECT_EQ(block_metrics.absorbedDeletedBytes, 3 * kBlockSize);
    EXPECT_LT(block_metrics.totalServerWrites(),
              whole_metrics.totalServerWrites());
}

TEST(BlockCallbacks, NewWriterStillGetsWholeFileRecall)
{
    prep::OpStream ops;
    ops.clientCount = 2;
    prep::Op base;
    base.client = 0;
    base.pid = 1;
    base.file = 1;
    prep::Op open = base;
    open.time = 0;
    open.type = prep::OpType::Open;
    open.openForWrite = true;
    ops.ops.push_back(open);
    prep::Op write = base;
    write.time = 1;
    write.type = prep::OpType::Write;
    write.length = 2 * kBlockSize;
    ops.ops.push_back(write);
    prep::Op close = base;
    close.time = 2;
    close.type = prep::OpType::Close;
    ops.ops.push_back(close);
    // Client 1 rewrites one block: the whole old dirty set must be on
    // the server first (ownership transfer).
    prep::Op open2 = base;
    open2.time = 3;
    open2.client = 1;
    open2.pid = 2;
    open2.type = prep::OpType::Open;
    open2.openForWrite = true;
    ops.ops.push_back(open2);
    prep::Op write2 = base;
    write2.time = 4;
    write2.client = 1;
    write2.pid = 2;
    write2.type = prep::OpType::Write;
    write2.length = kBlockSize;
    ops.ops.push_back(write2);
    prep::Op close2 = open2;
    close2.time = 5;
    close2.type = prep::OpType::Close;
    ops.ops.push_back(close2);

    core::ClusterConfig config;
    config.model.kind = ModelKind::Unified;
    config.model.volatileBytes = kMiB;
    config.model.nvramBytes = kMiB;
    config.blockLevelCallbacks = true;
    core::ClusterSim sim(config, 2);
    const Metrics m = sim.run(ops);
    EXPECT_EQ(m.serverWrites(WriteCause::Callback), 2 * kBlockSize);
}

// -------------------------------------------------- FFS baseline

workload::ServerOp
sw(TimeUs t, FileId f, Bytes off, Bytes len)
{
    return {t, 0, f, off, len, workload::ServerOp::Kind::Write};
}

workload::ServerOp
sf(TimeUs t, FileId f)
{
    return {t, 0, f, 0, 0, workload::ServerOp::Kind::Fsync};
}

TEST(FfsServer, NfsModeMakesEveryWriteSynchronous)
{
    ffs::FfsConfig config;
    config.nfsProtocol = true;
    ffs::FfsServer server(config);
    server.run({sw(secondsUs(1), 1, 0, 2 * kBlockSize)});
    // 2 data blocks + 1 metadata create, all synchronous.
    EXPECT_EQ(server.stats().syncOperations, 3u);
    EXPECT_EQ(server.stats().diskWrites, 3u);
    EXPECT_GT(server.stats().meanSyncLatencyMs(), 1.0);
}

TEST(FfsServer, LocalModeDefersToWriteBack)
{
    ffs::FfsServer server{ffs::FfsConfig{}};
    server.run({
        sw(secondsUs(1), 1, 0, kBlockSize),
        sw(secondsUs(60), 2, 0, 100), // advances the sweep clock
    });
    // Only the metadata creates were synchronous.
    EXPECT_EQ(server.stats().metadataWrites, 2u);
    EXPECT_EQ(server.stats().syncOperations, 2u);
    EXPECT_GE(server.stats().diskWrites, 3u);
}

TEST(FfsServer, PrestoserveAbsorbsSyncLatency)
{
    ffs::FfsConfig plain_config;
    plain_config.nfsProtocol = true;
    ffs::FfsConfig presto_config = plain_config;
    presto_config.nvramBytes = kMiB;

    std::vector<workload::ServerOp> ops;
    for (int i = 0; i < 50; ++i)
        ops.push_back(sw(secondsUs(1 + i), 1, i * kBlockSize,
                         kBlockSize));

    ffs::FfsServer plain(plain_config);
    plain.run(ops);
    ffs::FfsServer presto(presto_config);
    presto.run(ops);

    EXPECT_LT(presto.stats().meanSyncLatencyMs(),
              0.1 * plain.stats().meanSyncLatencyMs());
    EXPECT_GT(presto.stats().nvramAbsorbed, 0u);
    // Sorted draining costs less disk time than per-op seeks.
    EXPECT_LT(presto.stats().diskTimeMs, plain.stats().diskTimeMs);
    // The same data still reaches the disk.
    EXPECT_EQ(presto.stats().dataBytes, plain.stats().dataBytes);
}

TEST(FfsServer, FsyncFlushesSynchronously)
{
    ffs::FfsServer server{ffs::FfsConfig{}};
    server.run({
        sw(secondsUs(1), 1, 0, kBlockSize),
        sf(secondsUs(2), 1),
        sw(secondsUs(60), 2, 0, 100),
    });
    // create-metadata + fsync data + fsync metadata.
    EXPECT_GE(server.stats().syncOperations, 3u);
}

// ------------------------------------------------- network model

TEST(NetworkModel, TransferScalesWithBytes)
{
    const net::NetworkModel wire;
    const auto small = wire.transfer(8 * kKiB);
    const auto large = wire.transfer(8 * kMiB);
    EXPECT_GT(large.totalMs(), 100.0 * small.totalMs());
    // 8 KB at 10 Mbit/s: ~6.6 ms on the wire + 1 ms RPC.
    EXPECT_NEAR(small.wireMs, 6.55, 0.2);
    EXPECT_NEAR(small.rpcMs, 1.0, 1e-9);
}

TEST(NetworkModel, RpcOverheadPerFragment)
{
    const net::NetworkModel wire;
    // 32 KB = 4 fragments of 8 KB.
    EXPECT_NEAR(wire.transfer(32 * kKiB).rpcMs, 4.0, 1e-9);
    // Zero bytes: nothing to send.
    EXPECT_DOUBLE_EQ(wire.transfer(0).totalMs(), 0.0);
}

TEST(NetworkModel, UtilizationFractionOfInterval)
{
    const net::NetworkModel wire;
    // ~1.25 MB takes ~1 s of wire time; in 10 s that is ~10%.
    const double util =
        wire.utilization(1250 * kKiB, 10 * kUsPerSecond);
    EXPECT_GT(util, 0.08);
    EXPECT_LT(util, 0.25);
}

// --------------------------------------------- cost alternatives

TEST(CostAlternatives, UpsAndFlashListed)
{
    const auto &alts = nvram::alternatives1992();
    ASSERT_EQ(alts.size(), 2u);
    EXPECT_EQ(alts[0].fixedCost, 800.0);
    EXPECT_TRUE(alts[1].wearsOut);
}

TEST(CostAlternatives, NvramCheapestForSmallMemories)
{
    // "a UPS ... is more expensive for small amounts of memory."
    EXPECT_EQ(nvram::cheapestProtection(1.0), "NVRAM");
    EXPECT_EQ(nvram::cheapestProtection(2.0), "NVRAM");
}

} // namespace
} // namespace nvfs
