/**
 * @file
 * Unit tests for the trace library: codecs, file round-trips,
 * validation, and merging.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "trace/codec.hpp"
#include "trace/merge.hpp"
#include "trace/stream.hpp"
#include "trace/validate.hpp"

namespace nvfs::trace {
namespace {

Event
makeEvent(TimeUs t, EventType type, ClientId client = 1, ProcId pid = 2,
          FileId file = 3, Bytes off = 0, Bytes len = 0,
          std::uint32_t flags = 0)
{
    Event e;
    e.time = t;
    e.type = type;
    e.client = client;
    e.pid = pid;
    e.file = file;
    e.offset = off;
    e.length = len;
    e.flags = flags;
    return e;
}

TEST(EventNames, AllDistinct)
{
    std::set<std::string> names;
    for (int t = 0; t <= static_cast<int>(EventType::EndOfTrace); ++t)
        names.insert(eventTypeName(static_cast<EventType>(t)));
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(EventType::EndOfTrace) + 1);
}

TEST(BinaryCodec, RoundTripsSingleEvent)
{
    const Event in = makeEvent(123456789, EventType::Write, 5, 77, 9,
                               8192, 4096, kOpenWrite);
    std::stringstream buffer;
    encodeEvent(in, buffer);
    const auto out = decodeEvent(buffer);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, in);
}

TEST(BinaryCodec, EofReturnsNullopt)
{
    std::stringstream buffer;
    EXPECT_FALSE(decodeEvent(buffer).has_value());
}

TEST(BinaryCodec, HeaderRoundTrips)
{
    TraceHeader in;
    in.traceIndex = 6;
    in.clientCount = 40;
    in.duration = 24 * kUsPerHour;
    in.eventCount = 999;
    std::stringstream buffer;
    encodeHeader(in, buffer);
    EXPECT_EQ(decodeHeader(buffer), in);
}

TEST(TextCodec, RoundTripsThroughToString)
{
    const Event in = makeEvent(42, EventType::Open, 2, 3, 4, 100, 0,
                               kOpenRead | kOpenWrite);
    const auto out = parseTextEvent(toString(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, in);
}

TEST(TextCodec, SkipsBlankAndComment)
{
    EXPECT_FALSE(parseTextEvent("").has_value());
    EXPECT_FALSE(parseTextEvent("   ").has_value());
    EXPECT_FALSE(parseTextEvent("# comment").has_value());
}

TEST(TextCodec, RejectsMalformedLinesWithTheField)
{
    // Garbage where a number belongs used to reach std::stoull and
    // escape as a bare std::invalid_argument (or silently truncate:
    // "42x" parsed as 42).  Now every bad field throws ValidateError
    // naming the offender.
    EXPECT_THROW(parseTextEvent("bogus write file=1"), ValidateError);
    EXPECT_THROW(parseTextEvent("5 warp file=1"), ValidateError);
    EXPECT_THROW(parseTextEvent("5 write file=abc"), ValidateError);
    EXPECT_THROW(parseTextEvent("5 write file=1x"), ValidateError);
    EXPECT_THROW(parseTextEvent("5 write len=-4"), ValidateError);
    EXPECT_THROW(parseTextEvent("5 write file"), ValidateError);
    EXPECT_THROW(parseTextEvent("5 write weird=1"), ValidateError);
    EXPECT_THROW(parseTextEvent("5"), ValidateError);

    try {
        parseTextEvent("5 write len=junk");
        FAIL() << "expected ValidateError";
    } catch (const ValidateError &e) {
        EXPECT_EQ(e.field(), "len");
        EXPECT_NE(std::string(e.what()).find("junk"),
                  std::string::npos);
    }
    try {
        parseTextEvent("notatime write file=1");
        FAIL() << "expected ValidateError";
    } catch (const ValidateError &e) {
        EXPECT_EQ(e.field(), "time");
    }
}

TEST(TraceFiles, BinaryRoundTrip)
{
    TraceBuffer in;
    in.header.traceIndex = 3;
    in.header.clientCount = 2;
    in.header.duration = 1000;
    in.push(makeEvent(1, EventType::Open, 0, 1, 0, 0, 0, kOpenWrite));
    in.push(makeEvent(2, EventType::Write, 0, 1, 0, 0, 4096));
    in.push(makeEvent(3, EventType::Close, 0, 1, 0, 4096));

    const auto path = std::filesystem::temp_directory_path() /
                      "nvfs_trace_test.bin";
    writeTraceFile(path.string(), in);
    const TraceBuffer out = readTraceFile(path.string());
    std::filesystem::remove(path);

    EXPECT_EQ(out.header.traceIndex, in.header.traceIndex);
    EXPECT_EQ(out.header.clientCount, in.header.clientCount);
    ASSERT_EQ(out.events.size(), in.events.size());
    for (std::size_t i = 0; i < in.events.size(); ++i)
        EXPECT_EQ(out.events[i], in.events[i]);
}

TEST(TraceFiles, TextRoundTrip)
{
    TraceBuffer in;
    in.push(makeEvent(1, EventType::Open, 0, 1, 0, 0, 0, kOpenRead));
    in.push(makeEvent(5, EventType::Close, 0, 1, 0, 100));

    const auto path = std::filesystem::temp_directory_path() /
                      "nvfs_trace_test.txt";
    writeTraceText(path.string(), in);
    const TraceBuffer out = readTraceText(path.string());
    std::filesystem::remove(path);

    ASSERT_EQ(out.events.size(), 2u);
    EXPECT_EQ(out.events[0], in.events[0]);
    EXPECT_EQ(out.events[1], in.events[1]);
}

// ---------------------------------------------------------- validate

TEST(Validate, AcceptsWellFormedTrace)
{
    TraceBuffer buffer;
    buffer.push(makeEvent(1, EventType::Open, 0, 1, 0, 0, 0,
                          kOpenWrite));
    buffer.push(makeEvent(2, EventType::Write, 0, 1, 0, 0, 100));
    buffer.push(makeEvent(3, EventType::Fsync, 0, 1, 0));
    buffer.push(makeEvent(4, EventType::Close, 0, 1, 0, 100));
    buffer.push(makeEvent(5, EventType::Delete, 0, 1, 0));
    buffer.push(makeEvent(6, EventType::EndOfTrace));
    const auto report = validateTrace(buffer);
    EXPECT_TRUE(report.ok()) << report.issues.front().message;
    EXPECT_EQ(report.eventsChecked, 6u);
}

TEST(Validate, FlagsTimeRegression)
{
    TraceBuffer buffer;
    buffer.push(makeEvent(10, EventType::Delete));
    buffer.push(makeEvent(5, EventType::Delete));
    EXPECT_FALSE(validateTrace(buffer).ok());
}

TEST(Validate, FlagsCloseWithoutOpen)
{
    TraceBuffer buffer;
    buffer.push(makeEvent(1, EventType::Close));
    EXPECT_FALSE(validateTrace(buffer).ok());
}

TEST(Validate, FlagsIoOnUnopenedFile)
{
    TraceBuffer buffer;
    buffer.push(makeEvent(1, EventType::Read, 1, 2, 3, 0, 10));
    EXPECT_FALSE(validateTrace(buffer).ok());
}

TEST(Validate, FlagsOpenWithoutMode)
{
    TraceBuffer buffer;
    buffer.push(makeEvent(1, EventType::Open));
    buffer.push(makeEvent(2, EventType::Close));
    EXPECT_FALSE(validateTrace(buffer).ok());
}

TEST(Validate, FlagsUnclosedFileAtEnd)
{
    TraceBuffer buffer;
    buffer.push(makeEvent(1, EventType::Open, 0, 1, 0, 0, 0,
                          kOpenRead));
    const auto report = validateTrace(buffer);
    EXPECT_FALSE(report.ok());
}

TEST(Validate, FlagsSelfMigration)
{
    TraceBuffer buffer;
    Event e = makeEvent(1, EventType::Migrate, 4);
    e.targetClient = 4;
    buffer.push(e);
    EXPECT_FALSE(validateTrace(buffer).ok());
}

TEST(Validate, FlagsZeroLengthIo)
{
    TraceBuffer buffer;
    buffer.push(makeEvent(1, EventType::Open, 0, 1, 0, 0, 0,
                          kOpenWrite));
    buffer.push(makeEvent(2, EventType::Write, 0, 1, 0, 0, 0));
    buffer.push(makeEvent(3, EventType::Close, 0, 1, 0));
    EXPECT_FALSE(validateTrace(buffer).ok());
}

TEST(Validate, FlagsEventAfterEnd)
{
    TraceBuffer buffer;
    buffer.push(makeEvent(1, EventType::EndOfTrace));
    buffer.push(makeEvent(2, EventType::Delete));
    EXPECT_FALSE(validateTrace(buffer).ok());
}

// -------------------------------------------------------------- merge

TEST(Merge, InterleavesByTime)
{
    TraceBuffer a, b;
    a.push(makeEvent(1, EventType::Delete, 0));
    a.push(makeEvent(5, EventType::Delete, 0));
    b.push(makeEvent(3, EventType::Delete, 1));

    const TraceBuffer merged = mergeTraces({a, b});
    ASSERT_EQ(merged.events.size(), 3u);
    EXPECT_EQ(merged.events[0].time, 1);
    EXPECT_EQ(merged.events[1].time, 3);
    EXPECT_EQ(merged.events[2].time, 5);
}

TEST(Merge, StableForEqualTimes)
{
    TraceBuffer a, b;
    a.push(makeEvent(1, EventType::Delete, 0));
    b.push(makeEvent(1, EventType::Delete, 1));
    const TraceBuffer merged = mergeTraces({a, b});
    ASSERT_EQ(merged.events.size(), 2u);
    EXPECT_EQ(merged.events[0].client, 0); // earlier stream wins ties
    EXPECT_EQ(merged.events[1].client, 1);
}

TEST(Merge, EmptyInputs)
{
    EXPECT_EQ(mergeTraces({}).events.size(), 0u);
    TraceBuffer empty;
    EXPECT_EQ(mergeTraces({empty, empty}).events.size(), 0u);
}

TEST(Merge, StableSortByTime)
{
    TraceBuffer buffer;
    buffer.push(makeEvent(5, EventType::Delete, 0));
    buffer.push(makeEvent(1, EventType::Delete, 1));
    buffer.push(makeEvent(5, EventType::Delete, 2));
    stableSortByTime(buffer);
    EXPECT_EQ(buffer.events[0].client, 1);
    EXPECT_EQ(buffer.events[1].client, 0); // original order preserved
    EXPECT_EQ(buffer.events[2].client, 2);
}

} // namespace
} // namespace nvfs::trace
