/**
 * @file
 * Unit tests for the NVRAM device model (battery semantics, the
 * Section 4 recovery story) and the Table 1 cost model.
 */

#include <gtest/gtest.h>

#include "nvram/cost.hpp"
#include "nvram/device.hpp"

namespace nvfs::nvram {
namespace {

TEST(Device, PutGetErase)
{
    NvramDevice device({.capacity = 16 * kKiB});
    EXPECT_TRUE(device.put(1, 4096));
    EXPECT_EQ(device.usedBytes(), 4096u);
    const auto got = device.get(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 4096u);
    EXPECT_EQ(device.erase(1), 4096u);
    EXPECT_EQ(device.usedBytes(), 0u);
    EXPECT_FALSE(device.get(1).has_value());
}

TEST(Device, CapacityEnforced)
{
    NvramDevice device({.capacity = 8 * kKiB});
    EXPECT_TRUE(device.put(1, 8 * kKiB));
    EXPECT_FALSE(device.put(2, 1));
    EXPECT_EQ(device.freeBytes(), 0u);
    // Replacing an existing tag with a smaller value shrinks usage.
    EXPECT_TRUE(device.put(1, 1024));
    EXPECT_EQ(device.freeBytes(), 8 * kKiB - 1024);
}

TEST(Device, AccessCountersTrackTraffic)
{
    NvramDevice device;
    device.put(1, 100);
    device.put(2, 100);
    device.get(1);
    EXPECT_EQ(device.writeAccesses(), 2u);
    EXPECT_EQ(device.readAccesses(), 1u);
}

TEST(Device, SurvivesCrashWithGoodBattery)
{
    // Section 4: move the NVRAM to another client and recover.
    NvramDevice device({.capacity = kMiB, .batteries = 2});
    device.put(7, 2048);
    device.detach(); // host crashed
    device.attach(); // plugged into another machine
    EXPECT_TRUE(device.contentsValid());
    EXPECT_EQ(*device.get(7), 2048u);
}

TEST(Device, LosesContentsWithoutBatteries)
{
    NvramDevice device({.capacity = kMiB, .batteries = 1});
    device.put(7, 2048);
    device.failBattery();
    device.detach();
    EXPECT_FALSE(device.contentsValid());
    EXPECT_FALSE(device.get(7).has_value());
    EXPECT_EQ(device.usedBytes(), 0u);
}

TEST(Device, RedundantBatteryCoversOneFailure)
{
    NvramDevice device({.capacity = kMiB, .batteries = 2});
    device.put(7, 2048);
    device.failBattery(); // one cell dies, the spare holds
    device.detach();
    device.attach();
    EXPECT_TRUE(device.contentsValid());
    EXPECT_EQ(device.goodBatteries(), 1);
}

TEST(Device, BatteryFailureWhileDetachedKillsContents)
{
    NvramDevice device({.capacity = kMiB, .batteries = 1});
    device.put(7, 2048);
    device.detach();
    EXPECT_TRUE(device.contentsValid());
    device.failBattery();
    EXPECT_FALSE(device.contentsValid());
}

TEST(Device, PoweredHostMasksBatteryLoss)
{
    NvramDevice device({.capacity = kMiB, .batteries = 1});
    device.put(7, 2048);
    device.failBattery(); // still attached: contents held by PSU
    EXPECT_TRUE(device.contentsValid());
}

// ------------------------------------------------------------- costs

TEST(Cost, TableHasPublishedShape)
{
    const auto &table = costTable1992();
    EXPECT_EQ(table.size(), 8u);
    EXPECT_DOUBLE_EQ(dramPricePerMB(), 33.0);
    // NVRAM is 4-6x DRAM at best (the 16 MB boards).
    const double ratio = cheapestNvramPricePerMB(16.0) /
                         dramPricePerMB();
    EXPECT_GT(ratio, 3.5);
    EXPECT_LT(ratio, 6.0);
}

TEST(Cost, SmallConfigsCostMore)
{
    EXPECT_GT(cheapestNvramPricePerMB(0.5),
              cheapestNvramPricePerMB(16.0));
}

TEST(Cost, EquivalentVolatileInterpolates)
{
    // Volatile curve: traffic falls linearly 50 -> 42 over 0..8 MB.
    const std::vector<CurvePoint> volatile_curve = {
        {0, 50}, {4, 46}, {8, 42}};
    // NVRAM curve: 1 MB of NVRAM reaches 46%.
    const std::vector<CurvePoint> nvram_curve = {
        {0, 50}, {1, 46}, {8, 40}};
    EXPECT_NEAR(equivalentVolatileMB(volatile_curve, nvram_curve, 1.0),
                4.0, 1e-9);
    EXPECT_NEAR(breakEvenPriceRatio(volatile_curve, nvram_curve, 1.0),
                4.0, 1e-9);
}

TEST(Cost, NvramBeyondCurveClampsToEnd)
{
    const std::vector<CurvePoint> volatile_curve = {{0, 50}, {8, 45}};
    const std::vector<CurvePoint> nvram_curve = {{0, 50}, {2, 30}};
    // NVRAM reaches traffic the volatile curve never attains.
    EXPECT_DOUBLE_EQ(
        equivalentVolatileMB(volatile_curve, nvram_curve, 2.0), 8.0);
}

} // namespace
} // namespace nvfs::nvram
