/**
 * @file
 * Unit tests for the disk model and scheduler, anchored to the
 * Solworth & Orji numbers the paper cites.
 */

#include <gtest/gtest.h>

#include "disk/scheduler.hpp"
#include "util/rng.hpp"

namespace nvfs::disk {
namespace {

TEST(DiskModel, RotationAndTransfer)
{
    DiskModel model;
    // 4400 RPM: half a rotation = 30000/4400 ms.
    EXPECT_NEAR(model.avgRotationMs(), 30000.0 / 4400.0, 1e-9);
    // 1.6 MB/s: one MiB takes 625 ms.
    EXPECT_NEAR(model.transferMs(kMiB), 625.0, 1.0);
}

TEST(DiskModel, SeekGrowsWithDistance)
{
    DiskModel model;
    EXPECT_DOUBLE_EQ(model.seekMs(100, 100), 0.0);
    const double near = model.seekMs(100, 101);
    const double far = model.seekMs(0, model.params().cylinders - 1);
    EXPECT_GT(near, 0.0);
    EXPECT_GT(far, near);
    EXPECT_GE(far, model.params().avgSeekMs);
}

TEST(DiskModel, SequentialBeatsRandom)
{
    DiskModel model;
    const double random = model.serviceRandom(kBlockSize).totalMs();
    const double sequential =
        model.serviceSequential(kBlockSize).totalMs();
    EXPECT_LT(sequential, random);
}

TEST(DiskModel, UtilizationOfRandomSmallWritesIsLow)
{
    // The paper cites [20]: ~7% of bandwidth for random block writes.
    DiskModel model;
    const double util = unbufferedUtilization(model, kBlockSize);
    EXPECT_GT(util, 0.02);
    EXPECT_LT(util, 0.20);
}

TEST(DiskModel, FullSegmentWriteNearsMediaRate)
{
    DiskModel model;
    const double util =
        model.serviceSequential(512 * kKiB).utilization();
    EXPECT_GT(util, 0.9);
}

TEST(Scheduler, ElevatorNeverSlowerThanFifo)
{
    DiskModel model;
    util::Rng rng(4);
    for (int round = 0; round < 10; ++round) {
        std::vector<DiskRequest> requests;
        for (int i = 0; i < 200; ++i) {
            requests.push_back(
                {static_cast<std::uint32_t>(rng.uniformInt(
                     0, model.params().cylinders - 1)),
                 kBlockSize});
        }
        const double fifo =
            serviceBatch(model, requests, Schedule::Fifo).totalMs();
        const double elevator =
            serviceBatch(model, requests, Schedule::Elevator)
                .totalMs();
        EXPECT_LE(elevator, fifo);
    }
}

TEST(Scheduler, SortedThousandIosMultiplyUtilization)
{
    // The [20] claim: buffering+sorting 1000 writes lifts utilization
    // from ~7% to ~40%.
    DiskModel model;
    util::Rng rng(5);
    std::vector<DiskRequest> requests;
    for (int i = 0; i < 1000; ++i) {
        requests.push_back(
            {static_cast<std::uint32_t>(rng.uniformInt(
                 0, model.params().cylinders - 1)),
             kBlockSize});
    }
    const double base = unbufferedUtilization(model, kBlockSize);
    const double sorted =
        serviceBatch(model, requests, Schedule::Elevator)
            .utilization();
    EXPECT_GT(sorted, 3.0 * base);
    EXPECT_GT(sorted, 0.2);
    EXPECT_LT(sorted, 0.8);
}

TEST(Scheduler, EmptyBatch)
{
    DiskModel model;
    const ServiceTime t = serviceBatch(model, {}, Schedule::Elevator);
    EXPECT_DOUBLE_EQ(t.totalMs(), 0.0);
    EXPECT_DOUBLE_EQ(t.utilization(), 0.0);
}

} // namespace
} // namespace nvfs::disk
