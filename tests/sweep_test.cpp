/**
 * @file
 * SweepRunner determinism and thread-pool behavior: a parallel sweep
 * must return exactly what the serial loop it replaces would have,
 * in the same order, for any worker count — and the memoized
 * experiment caches must be safe to hit from concurrent tasks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <numeric>

#include "core/sim/sweep.hpp"
#include "prep/op_cache.hpp"
#include "util/thread_pool.hpp"

namespace nvfs::core {
namespace {

constexpr double kScale = 0.02;

/** The grid every determinism test sweeps: 3 models x 4 sizes. */
std::vector<ModelConfig>
standardGrid()
{
    std::vector<ModelConfig> models;
    for (const double mb : {0.25, 0.5, 1.0, 2.0}) {
        for (const auto kind :
             {ModelKind::Volatile, ModelKind::WriteAside,
              ModelKind::Unified}) {
            ModelConfig model;
            model.kind = kind;
            model.volatileBytes = 4 * kMiB;
            model.nvramBytes = static_cast<Bytes>(mb * kMiB);
            models.push_back(model);
        }
    }
    return models;
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    util::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    util::ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DefaultJobCountIsPositive)
{
    EXPECT_GE(util::defaultJobCount(), 1u);
}

TEST(SweepRunner, MapPreservesSubmissionOrder)
{
    // More tasks than threads: results must still land in order.
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 64; ++i)
        tasks.push_back([i] { return i * i; });
    const SweepRunner runner(4);
    const auto results = runner.map(tasks);
    ASSERT_EQ(results.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(SweepRunner, MapRethrowsTaskExceptions)
{
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([i]() -> int {
            if (i == 5)
                throw std::runtime_error("task 5 failed");
            return i;
        });
    }
    const SweepRunner runner(4);
    EXPECT_THROW(runner.map(tasks), std::runtime_error);
}

TEST(SweepRunner, EmptySweepIsEmpty)
{
    const SweepRunner runner(4);
    EXPECT_TRUE(runner.map(std::vector<std::function<int()>>{})
                    .empty());
    EXPECT_TRUE(runner
                    .runClientSweep(standardOps(7, kScale), {})
                    .empty());
}

TEST(SweepRunner, JobsResolveToAtLeastOne)
{
    EXPECT_GE(SweepRunner().jobs(), 1u);
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunner, ClientSweepMatchesSerialForAnyWorkerCount)
{
    const auto &ops = standardOps(7, kScale);
    const auto models = standardGrid();

    std::vector<Metrics> serial;
    for (const ModelConfig &model : models)
        serial.push_back(runClientSim(ops, model));

    for (const unsigned jobs : {1u, 2u, 8u}) {
        const SweepRunner runner(jobs);
        const auto parallel = runner.runClientSweep(ops, models);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(parallel[i], serial[i])
                << "config " << i << " diverged at " << jobs
                << " jobs";
    }
}

TEST(SweepRunner, ClusterSweepMatchesSerial)
{
    const auto &ops = standardOps(2, kScale);
    std::vector<ClusterConfig> configs;
    for (const bool block_level : {false, true}) {
        ClusterConfig config;
        config.model.kind = ModelKind::Unified;
        config.model.volatileBytes = 4 * kMiB;
        config.model.nvramBytes = kMiB;
        config.blockLevelCallbacks = block_level;
        configs.push_back(config);
    }

    std::vector<Metrics> serial;
    for (const ClusterConfig &config : configs) {
        ClusterSim sim(config,
                       std::max<std::uint32_t>(1, ops.clientCount));
        serial.push_back(sim.run(ops));
    }

    const SweepRunner runner(2);
    const auto parallel = runner.runClusterSweep(ops, configs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(parallel[i], serial[i]);
}

TEST(SweepRunner, ServerSweepMatchesSerial)
{
    const TimeUs duration = kUsPerHour / 2;
    std::vector<ServerSweepConfig> configs;
    for (const Bytes buffer : {Bytes{0}, Bytes{128 * kKiB}})
        configs.push_back({duration, 0.1, buffer});

    std::vector<ServerRunResult> serial;
    for (const ServerSweepConfig &config : configs)
        serial.push_back(runServerSim(config.duration, config.scale,
                                      config.nvramBufferBytes,
                                      config.seed));

    const SweepRunner runner(2);
    const auto parallel = runner.runServerSweep(configs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].totalDiskWrites,
                  serial[i].totalDiskWrites);
        EXPECT_EQ(parallel[i].totalDataBytes,
                  serial[i].totalDataBytes);
        ASSERT_EQ(parallel[i].fs.size(), serial[i].fs.size());
        for (std::size_t f = 0; f < serial[i].fs.size(); ++f) {
            EXPECT_EQ(parallel[i].fs[f].log.segmentsWritten,
                      serial[i].fs[f].log.segmentsWritten);
            EXPECT_EQ(parallel[i].fs[f].log.dataBytes,
                      serial[i].fs[f].log.dataBytes);
        }
    }
}

TEST(SweepRunner, ConcurrentFirstTouchOfMemoizedCaches)
{
    // Many tasks hitting the same *cold* memoized entries: the mutex
    // guards must serialize generation and hand every task the same
    // stable reference.  Uses a (trace, scale) pair no other test
    // warms first.
    std::vector<std::function<const prep::OpStream *()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back(
            [] { return &standardOps(3, 0.011); });
    }
    const SweepRunner runner(8);
    const auto pointers = runner.map(tasks);
    for (const prep::OpStream *ops : pointers)
        EXPECT_EQ(ops, pointers.front());

    // Same for the lifetime and oracle caches.
    std::vector<std::function<const void *()>> more;
    for (int i = 0; i < 8; ++i)
        more.push_back(
            [] { return static_cast<const void *>(
                     &standardLifetimes(3, 0.011)); });
    for (int i = 0; i < 8; ++i)
        more.push_back(
            [] { return static_cast<const void *>(
                     &standardOracle(3, 0.011)); });
    const auto stable = runner.map(more);
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(stable[i], stable[0]);
    for (int i = 9; i < 16; ++i)
        EXPECT_EQ(stable[i], stable[8]);
}

TEST(SweepRunner, TraceCacheRoundTripKeepsMetricsIdentical)
{
    // A trace that went through the persistent cache (encode, store,
    // mmap, decode) must replay to byte-identical metrics, serially
    // and in parallel — the cache changes where ops come from, never
    // what the simulator computes.
    const auto &ops = standardOps(7, kScale);
    const auto models = standardGrid();
    std::vector<Metrics> serial;
    for (const ModelConfig &model : models)
        serial.push_back(runClientSim(ops, model));

    const std::string dir =
        testing::TempDir() + "nvfs_sweep_trace_cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::uint64_t hash = standardOpsFingerprint(7, kScale);
    const std::string path =
        dir + "/" + prep::opsCacheFileName(ops.traceIndex, hash);
    ASSERT_TRUE(prep::storeCachedOps(path, ops, hash));
    const auto reloaded = prep::loadCachedOps(path, hash);
    ASSERT_TRUE(reloaded.has_value());
    ASSERT_TRUE(reloaded->ops == ops.ops)
        << "cache round-trip altered the op stream";

    for (const unsigned jobs : {1u, 4u}) {
        const SweepRunner runner(jobs);
        const auto parallel = runner.runClientSweep(*reloaded, models);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(parallel[i], serial[i])
                << "config " << i << " diverged at " << jobs
                << " jobs after a cache round-trip";
    }
}

TEST(SweepRunner, StressManyMoreTasksThanThreads)
{
    const auto &ops = standardOps(7, kScale);
    ModelConfig model;
    model.kind = ModelKind::Unified;
    model.volatileBytes = 4 * kMiB;
    model.nvramBytes = kMiB;
    const Metrics expected = runClientSim(ops, model);

    // 32 identical sims through 4 threads: every slot must hold the
    // same metrics (no cross-task state leakage).
    const std::vector<ModelConfig> models(32, model);
    const SweepRunner runner(4);
    const auto results = runner.runClientSweep(ops, models);
    ASSERT_EQ(results.size(), 32u);
    for (const Metrics &metrics : results)
        EXPECT_EQ(metrics, expected);
}

} // namespace
} // namespace nvfs::core
