/**
 * @file
 * SweepRunner determinism and thread-pool behavior: a parallel sweep
 * must return exactly what the serial loop it replaces would have,
 * in the same order, for any worker count — and the memoized
 * experiment caches must be safe to hit from concurrent tasks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <numeric>
#include <optional>
#include <string>

#include "core/sim/sweep.hpp"
#include "prep/op_cache.hpp"
#include "trace/stream.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace nvfs::core {
namespace {

constexpr double kScale = 0.02;

/** The grid every determinism test sweeps: 3 models x 4 sizes. */
std::vector<ModelConfig>
standardGrid()
{
    std::vector<ModelConfig> models;
    for (const double mb : {0.25, 0.5, 1.0, 2.0}) {
        for (const auto kind :
             {ModelKind::Volatile, ModelKind::WriteAside,
              ModelKind::Unified}) {
            ModelConfig model;
            model.kind = kind;
            model.volatileBytes = 4 * kMiB;
            model.nvramBytes = static_cast<Bytes>(mb * kMiB);
            models.push_back(model);
        }
    }
    return models;
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    util::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    util::ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DefaultJobCountIsPositive)
{
    EXPECT_GE(util::defaultJobCount(), 1u);
}

TEST(ThreadPool, WorkStealingNestedSubmissionStress)
{
    // A recursive fan-out of many tiny tasks: each task submits four
    // children from inside the pool (landing on the executing
    // worker's own deque), so completion requires idle workers to
    // steal.  Total tasks: 1 + 4 + ... + 4^5 = 1365.
    util::ThreadPool pool(4);
    std::atomic<int> count{0};
    std::function<void(int)> fan = [&](int depth) {
        ++count;
        if (depth == 0)
            return;
        for (int i = 0; i < 4; ++i)
            pool.submit([&fan, depth] { fan(depth - 1); });
    };
    pool.submit([&fan] { fan(5); });
    pool.wait();
    EXPECT_EQ(count.load(), 1365);
}

TEST(ThreadPool, ThrowingTaskSurfacesToWaitAndPoolStaysUsable)
{
    // Regression: a task that throws must not deadlock shutdown or
    // wedge the pool; the first exception reaches the next wait(),
    // every other task still runs, and the pool is reusable after.
    util::ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i) {
        pool.submit([&ran, i] {
            ++ran;
            if (i % 8 == 0)
                throw std::runtime_error("task blew up");
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 32);
    pool.submit([&ran] { ++ran; });
    pool.wait(); // error was consumed above; this must not throw
    EXPECT_EQ(ran.load(), 33);
}

TEST(ThreadPool, ThrowingTasksDoNotDeadlockDestruction)
{
    // Destroying a pool with unobserved task exceptions (wait() never
    // called) must join cleanly instead of terminating or hanging.
    util::ThreadPool pool(4);
    for (int i = 0; i < 64; ++i)
        pool.submit([] { throw std::runtime_error("unobserved"); });
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    const std::size_t n = 10007; // prime: chunks never divide evenly
    for (const unsigned jobs : {1u, 2u, 8u}) {
        util::ThreadPool pool(jobs);
        std::vector<int> touched(n, 0);
        pool.parallelFor(0, n, [&touched](std::size_t b,
                                          std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                ++touched[i]; // chunks are disjoint: no race
        });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(touched[i], 1) << "index " << i << " at "
                                     << jobs << " jobs";
    }
}

TEST(ThreadPool, ParallelReduceBitIdenticalAcrossWidths)
{
    // Floating-point reduction: the chunk structure and combine order
    // depend only on the iteration count, so the sum must be
    // *bit-identical* (EXPECT_EQ, not NEAR) for any worker count.
    const std::size_t n = 4999;
    const auto produce = [](std::size_t b, std::size_t e) {
        double sum = 0.0;
        for (std::size_t i = b; i < e; ++i)
            sum += std::sin(static_cast<double>(i)) +
                   1.0 / static_cast<double>(i + 1);
        return sum;
    };
    const auto combine = [](double a, double b) { return a + b; };
    std::optional<double> reference;
    for (const unsigned jobs : {1u, 2u, 3u, 8u}) {
        util::ThreadPool pool(jobs);
        const double value =
            pool.parallelReduce(0, n, 0.0, produce, combine);
        if (!reference)
            reference = value;
        else
            EXPECT_EQ(*reference, value)
                << "reduction diverged at " << jobs << " jobs";
    }
}

TEST(ThreadPool, ParallelForRethrowsLowestChunkException)
{
    // Two chunks throw; the lowest-index chunk's exception must win
    // regardless of which worker reached it first — that is what
    // makes parallel error reporting match the serial loop.
    for (const unsigned jobs : {1u, 4u}) {
        util::ThreadPool pool(jobs);
        std::string what;
        try {
            pool.parallelFor(
                0, 64,
                [](std::size_t b, std::size_t) {
                    if (b == 3 || b == 10)
                        throw std::runtime_error(
                            "chunk " + std::to_string(b));
                },
                1);
        } catch (const std::runtime_error &error) {
            what = error.what();
        }
        EXPECT_EQ(what, "chunk 3") << "at " << jobs << " jobs";
    }
}

TEST(SweepRunner, MapPreservesSubmissionOrder)
{
    // More tasks than threads: results must still land in order.
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 64; ++i)
        tasks.push_back([i] { return i * i; });
    const SweepRunner runner(4);
    const auto results = runner.map(tasks);
    ASSERT_EQ(results.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(SweepRunner, MapRethrowsTaskExceptions)
{
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([i]() -> int {
            if (i == 5)
                throw std::runtime_error("task 5 failed");
            return i;
        });
    }
    const SweepRunner runner(4);
    EXPECT_THROW(runner.map(tasks), std::runtime_error);
}

TEST(SweepRunner, EmptySweepIsEmpty)
{
    const SweepRunner runner(4);
    EXPECT_TRUE(runner.map(std::vector<std::function<int()>>{})
                    .empty());
    EXPECT_TRUE(runner
                    .runClientSweep(standardOps(7, kScale), {})
                    .empty());
}

TEST(SweepRunner, JobsResolveToAtLeastOne)
{
    EXPECT_GE(SweepRunner().jobs(), 1u);
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunner, ClientSweepMatchesSerialForAnyWorkerCount)
{
    const auto &ops = standardOps(7, kScale);
    const auto models = standardGrid();

    std::vector<Metrics> serial;
    for (const ModelConfig &model : models)
        serial.push_back(runClientSim(ops, model));

    for (const unsigned jobs : {1u, 2u, 8u}) {
        const SweepRunner runner(jobs);
        const auto parallel = runner.runClientSweep(ops, models);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(parallel[i], serial[i])
                << "config " << i << " diverged at " << jobs
                << " jobs";
    }
}

TEST(SweepRunner, ClusterSweepMatchesSerial)
{
    const auto &ops = standardOps(2, kScale);
    std::vector<ClusterConfig> configs;
    for (const bool block_level : {false, true}) {
        ClusterConfig config;
        config.model.kind = ModelKind::Unified;
        config.model.volatileBytes = 4 * kMiB;
        config.model.nvramBytes = kMiB;
        config.blockLevelCallbacks = block_level;
        configs.push_back(config);
    }

    std::vector<Metrics> serial;
    for (const ClusterConfig &config : configs) {
        ClusterSim sim(config,
                       std::max<std::uint32_t>(1, ops.clientCount));
        serial.push_back(sim.run(ops));
    }

    const SweepRunner runner(2);
    const auto parallel = runner.runClusterSweep(ops, configs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(parallel[i], serial[i]);
}

TEST(SweepRunner, ServerSweepMatchesSerial)
{
    const TimeUs duration = kUsPerHour / 2;
    std::vector<ServerSweepConfig> configs;
    for (const Bytes buffer : {Bytes{0}, Bytes{128 * kKiB}})
        configs.push_back({duration, 0.1, buffer});

    std::vector<ServerRunResult> serial;
    for (const ServerSweepConfig &config : configs)
        serial.push_back(runServerSim(config.duration, config.scale,
                                      config.nvramBufferBytes,
                                      config.seed));

    const SweepRunner runner(2);
    const auto parallel = runner.runServerSweep(configs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].totalDiskWrites,
                  serial[i].totalDiskWrites);
        EXPECT_EQ(parallel[i].totalDataBytes,
                  serial[i].totalDataBytes);
        ASSERT_EQ(parallel[i].fs.size(), serial[i].fs.size());
        for (std::size_t f = 0; f < serial[i].fs.size(); ++f) {
            EXPECT_EQ(parallel[i].fs[f].log.segmentsWritten,
                      serial[i].fs[f].log.segmentsWritten);
            EXPECT_EQ(parallel[i].fs[f].log.dataBytes,
                      serial[i].fs[f].log.dataBytes);
        }
    }
}

TEST(SweepRunner, ConcurrentFirstTouchOfMemoizedCaches)
{
    // Many tasks hitting the same *cold* memoized entries: the mutex
    // guards must serialize generation and hand every task the same
    // stable reference.  Uses a (trace, scale) pair no other test
    // warms first.
    std::vector<std::function<const prep::OpStream *()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back(
            [] { return &standardOps(3, 0.011); });
    }
    const SweepRunner runner(8);
    const auto pointers = runner.map(tasks);
    for (const prep::OpStream *ops : pointers)
        EXPECT_EQ(ops, pointers.front());

    // Same for the lifetime and oracle caches.
    std::vector<std::function<const void *()>> more;
    for (int i = 0; i < 8; ++i)
        more.push_back(
            [] { return static_cast<const void *>(
                     &standardLifetimes(3, 0.011)); });
    for (int i = 0; i < 8; ++i)
        more.push_back(
            [] { return static_cast<const void *>(
                     &standardOracle(3, 0.011)); });
    const auto stable = runner.map(more);
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(stable[i], stable[0]);
    for (int i = 9; i < 16; ++i)
        EXPECT_EQ(stable[i], stable[8]);
}

TEST(SweepRunner, TraceCacheRoundTripKeepsMetricsIdentical)
{
    // A trace that went through the persistent cache (encode, store,
    // mmap, decode) must replay to byte-identical metrics, serially
    // and in parallel — the cache changes where ops come from, never
    // what the simulator computes.
    const auto &ops = standardOps(7, kScale);
    const auto models = standardGrid();
    std::vector<Metrics> serial;
    for (const ModelConfig &model : models)
        serial.push_back(runClientSim(ops, model));

    const std::string dir =
        testing::TempDir() + "nvfs_sweep_trace_cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::uint64_t hash = standardOpsFingerprint(7, kScale);
    const std::string path =
        dir + "/" + prep::opsCacheFileName(ops.traceIndex, hash);
    ASSERT_TRUE(prep::storeCachedOps(path, ops, hash));
    const auto reloaded = prep::loadCachedOps(path, hash);
    ASSERT_TRUE(reloaded.has_value());
    ASSERT_TRUE(reloaded->ops == ops.ops)
        << "cache round-trip altered the op stream";

    for (const unsigned jobs : {1u, 4u}) {
        const SweepRunner runner(jobs);
        const auto parallel = runner.runClientSweep(*reloaded, models);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(parallel[i], serial[i])
                << "config " << i << " diverged at " << jobs
                << " jobs after a cache round-trip";
    }
}

TEST(SweepRunner, StressManyMoreTasksThanThreads)
{
    const auto &ops = standardOps(7, kScale);
    ModelConfig model;
    model.kind = ModelKind::Unified;
    model.volatileBytes = 4 * kMiB;
    model.nvramBytes = kMiB;
    const Metrics expected = runClientSim(ops, model);

    // 32 identical sims through 4 threads: every slot must hold the
    // same metrics (no cross-task state leakage).
    const std::vector<ModelConfig> models(32, model);
    const SweepRunner runner(4);
    const auto results = runner.runClientSweep(ops, models);
    ASSERT_EQ(results.size(), 32u);
    for (const Metrics &metrics : results)
        EXPECT_EQ(metrics, expected);
}

TEST(SweepRunner, PipelinedPreservesPointOrderAndResults)
{
    // replay runs on the calling thread in strict point order even
    // though prepares complete out of order on the pool.
    std::vector<int> points(9);
    std::iota(points.begin(), points.end(), 0);
    std::vector<int> replay_order;
    const SweepRunner runner(4);
    const auto results = runner.runPipelined(
        points, [](const int &p) { return p * 10; },
        [&replay_order](int v) {
            replay_order.push_back(v / 10);
            return v + 1;
        });
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(results[i], static_cast<int>(i) * 10 + 1);
    ASSERT_EQ(replay_order.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(replay_order[i], static_cast<int>(i));
}

TEST(SweepRunner, PipelinedRethrowsPrepareErrorAtItsPoint)
{
    // A prepare that throws must surface at its point's position in
    // replay order: every earlier point replays, no later one does.
    std::vector<int> points(8);
    std::iota(points.begin(), points.end(), 0);
    std::vector<int> replayed;
    const SweepRunner runner(4);
    EXPECT_THROW(
        runner.runPipelined(
            points,
            [](const int &p) {
                if (p == 5)
                    throw std::runtime_error("prepare 5 failed");
                return p;
            },
            [&replayed](int v) {
                replayed.push_back(v);
                return v;
            }),
        std::runtime_error);
    ASSERT_EQ(replayed.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(replayed[i], i);
}

TEST(SweepRunner, TraceSweepPipelinedMatchesSerial)
{
    // Full acceptance path: real trace files through the pipelined
    // multi-trace sweep.  Pipelining on (4 jobs), pipelining disabled
    // via NVFS_PIPELINE=0, and the plain serial runner must all
    // produce byte-identical metric tables.
    const std::string dir = testing::TempDir() + "nvfs_pipe_sweep";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::vector<std::string> paths;
    for (const int t : {3, 4, 7}) {
        const std::string path =
            dir + "/trace" + std::to_string(t) + ".nvt";
        trace::writeTraceFile(
            path, workload::generateStandardTrace(t, 0.01));
        paths.push_back(path);
    }
    const auto models = standardGrid();

    const auto serial = SweepRunner(1).runTraceSweep(paths, models);
    const auto piped = SweepRunner(4).runTraceSweep(paths, models);
    ::setenv("NVFS_PIPELINE", "0", 1);
    const auto strict = SweepRunner(4).runTraceSweep(paths, models);
    ::unsetenv("NVFS_PIPELINE");

    ASSERT_EQ(serial.size(), paths.size());
    ASSERT_EQ(piped.size(), paths.size());
    ASSERT_EQ(strict.size(), paths.size());
    for (std::size_t r = 0; r < paths.size(); ++r) {
        ASSERT_EQ(serial[r].size(), models.size());
        ASSERT_EQ(piped[r].size(), models.size());
        ASSERT_EQ(strict[r].size(), models.size());
        for (std::size_t c = 0; c < models.size(); ++c) {
            EXPECT_EQ(piped[r][c], serial[r][c])
                << "trace " << r << " model " << c
                << " diverged when pipelined";
            EXPECT_EQ(strict[r][c], serial[r][c])
                << "trace " << r << " model " << c
                << " diverged with NVFS_PIPELINE=0";
        }
    }
}

/** Both engines x all three models at a couple of NVRAM sizes. */
std::vector<ModelConfig>
gridModels()
{
    std::vector<ModelConfig> models;
    for (const bool extent : {false, true}) {
        for (const auto kind :
             {ModelKind::Volatile, ModelKind::WriteAside,
              ModelKind::Unified}) {
            ModelConfig model;
            model.kind = kind;
            model.volatileBytes = 4 * kMiB;
            model.nvramBytes = kMiB / 2;
            model.extentOps = extent;
            models.push_back(model);
        }
    }
    return models;
}

TEST(SweepRunner, GridMatchesSerialEveryTraceEngineAndModel)
{
    // The replay grid must be bit-identical to calling runClientSim
    // in a serial loop, for any width, with the invariant audits on:
    // traces 3/4/7, both block engines, all three models.
    ::setenv("NVFS_AUDIT", "2048", 1);
    const auto models = gridModels();
    for (const int t : {3, 4, 7}) {
        const auto &ops = standardOps(t, kScale);

        std::vector<Metrics> serial;
        serial.reserve(models.size());
        for (const ModelConfig &model : models)
            serial.push_back(runClientSim(ops, model));

        ::setenv("NVFS_GRID_JOBS", "1", 1);
        const auto one = runClientGrid(ops, models);
        ::setenv("NVFS_GRID_JOBS", "8", 1);
        const auto eight = runClientGrid(ops, models);
        ::unsetenv("NVFS_GRID_JOBS");

        ASSERT_EQ(one.size(), models.size());
        ASSERT_EQ(eight.size(), models.size());
        for (std::size_t c = 0; c < models.size(); ++c) {
            EXPECT_EQ(one[c], serial[c])
                << "trace " << t << " model " << c
                << " diverged at grid width 1";
            EXPECT_EQ(eight[c], serial[c])
                << "trace " << t << " model " << c
                << " diverged at grid width 8";
        }
    }
    ::unsetenv("NVFS_AUDIT");
}

TEST(SweepRunner, GridExplicitWidthMatchesSerial)
{
    // Explicit width overrides the env knob; widths beyond the model
    // count or the pool size must not change results either.
    const auto &ops = standardOps(3, kScale);
    const auto models = gridModels();
    const auto serial = runClientGrid(ops, models, 42, 1);
    for (const unsigned width : {2u, 3u, 64u}) {
        const auto wide = runClientGrid(ops, models, 42, width);
        ASSERT_EQ(wide.size(), serial.size());
        for (std::size_t c = 0; c < models.size(); ++c)
            EXPECT_EQ(wide[c], serial[c])
                << "model " << c << " diverged at width " << width;
    }
}

TEST(SweepRunner, GridJobsEnvRejectsMalformedValues)
{
    // Satellite: NVFS_GRID_JOBS goes through util::envInt's strict
    // parsing — zero, negative, and garbage all fall back to the
    // NVFS_JOBS-derived default (with a warning) instead of being
    // silently truncated or crashing.
    const unsigned fallback = util::defaultJobCount();
    for (const char *bad : {"0", "-3", "abc", "8x", ""}) {
        ::setenv("NVFS_GRID_JOBS", bad, 1);
        EXPECT_EQ(gridJobCount(), fallback)
            << "NVFS_GRID_JOBS=\"" << bad << '"';
    }
    ::setenv("NVFS_GRID_JOBS", "6", 1);
    EXPECT_EQ(gridJobCount(), 6u);
    ::unsetenv("NVFS_GRID_JOBS");
    EXPECT_EQ(gridJobCount(), fallback);
}

TEST(SweepRunner, GridInsidePipelinedSweepMatchesSerial)
{
    // Grid + pipeline concurrently (the TSan job runs this at
    // NVFS_JOBS=8): replay grids of width 8 race the pipeline's
    // prepare tasks on the shared pool, and the full metric table
    // must still be byte-identical to the serial runner.
    const std::string dir = testing::TempDir() + "nvfs_grid_sweep";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::vector<std::string> paths;
    for (const int t : {3, 4, 7}) {
        const std::string path =
            dir + "/trace" + std::to_string(t) + ".nvt";
        trace::writeTraceFile(
            path, workload::generateStandardTrace(t, 0.01));
        paths.push_back(path);
    }
    const auto models = gridModels();

    ::setenv("NVFS_GRID_JOBS", "1", 1);
    const auto serial = SweepRunner(1).runTraceSweep(paths, models);
    ::setenv("NVFS_GRID_JOBS", "8", 1);
    const auto wide = SweepRunner(4).runTraceSweep(paths, models);
    ::unsetenv("NVFS_GRID_JOBS");

    ASSERT_EQ(serial.size(), paths.size());
    ASSERT_EQ(wide.size(), paths.size());
    for (std::size_t r = 0; r < paths.size(); ++r) {
        ASSERT_EQ(wide[r].size(), models.size());
        for (std::size_t c = 0; c < models.size(); ++c)
            EXPECT_EQ(wide[r][c], serial[r][c])
                << "trace " << r << " model " << c
                << " diverged under pipelined grid replay";
    }
}

} // namespace
} // namespace nvfs::core
