/**
 * @file
 * Unit tests for pass 1: converting raw trace events into byte-range
 * operations, including the Sprite-compat offset deduction.
 */

#include <gtest/gtest.h>

#include "prep/converter.hpp"
#include "prep/ops.hpp"

namespace nvfs::prep {
namespace {

using trace::Event;
using trace::EventType;

Event
ev(TimeUs t, EventType type, Bytes off = 0, Bytes len = 0,
   std::uint32_t flags = 0)
{
    Event e;
    e.time = t;
    e.type = type;
    e.client = 1;
    e.pid = 2;
    e.file = 3;
    e.offset = off;
    e.length = len;
    e.flags = flags;
    return e;
}

std::vector<Op>
opsOfType(const OpStream &stream, OpType type)
{
    std::vector<Op> out;
    for (const Op &op : stream.ops) {
        if (op.type == type)
            out.push_back(op);
    }
    return out;
}

TEST(Converter, ExplicitEventsPassThrough)
{
    trace::TraceBuffer buffer;
    buffer.push(ev(1, EventType::Open, 0, 0, trace::kOpenWrite));
    buffer.push(ev(2, EventType::Write, 0, 4096));
    buffer.push(ev(3, EventType::Write, 4096, 100));
    buffer.push(ev(4, EventType::Close, 4196));

    ConvertStats stats;
    const OpStream stream = convertTrace(buffer, &stats);
    const auto writes = opsOfType(stream, OpType::Write);
    ASSERT_EQ(writes.size(), 2u);
    EXPECT_EQ(writes[0].offset, 0u);
    EXPECT_EQ(writes[0].length, 4096u);
    EXPECT_EQ(writes[1].offset, 4096u);
    EXPECT_EQ(writes[1].length, 100u);
    EXPECT_EQ(stats.eventsIn, 4u);
    EXPECT_EQ(stats.deducedWriteBytes, 0u); // nothing deduced
    EXPECT_EQ(totals(stream).writeBytes, 4196u);
}

TEST(Converter, SpriteCompatDeducesSequentialWrite)
{
    // Open at 0, close at 8192 with the dirty hint: one 8 KB write
    // reconstructed from offset movement alone.
    trace::TraceBuffer buffer;
    buffer.push(ev(1, EventType::Open, 0, 0, trace::kOpenWrite));
    buffer.push(ev(5, EventType::Close, 8192, 0, kDirtyHint));

    ConvertStats stats;
    const OpStream stream = convertTrace(buffer, &stats);
    const auto writes = opsOfType(stream, OpType::Write);
    ASSERT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0].offset, 0u);
    EXPECT_EQ(writes[0].length, 8192u);
    EXPECT_EQ(writes[0].time, 5);
    EXPECT_EQ(stats.deducedWriteBytes, 8192u);
}

TEST(Converter, SpriteCompatDeducesReadByOpenMode)
{
    trace::TraceBuffer buffer;
    buffer.push(ev(1, EventType::Open, 0, 0, trace::kOpenRead));
    buffer.push(ev(5, EventType::Close, 4096));

    ConvertStats stats;
    const OpStream stream = convertTrace(buffer, &stats);
    const auto reads = opsOfType(stream, OpType::Read);
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_EQ(reads[0].length, 4096u);
    EXPECT_EQ(stats.deducedReadBytes, 4096u);
}

TEST(Converter, SpriteCompatSeekSplitsRuns)
{
    // Seek carries position-before-seek in `offset` and the new
    // position in `length`: read [0, 100), jump to 500, read to 600.
    trace::TraceBuffer buffer;
    buffer.push(ev(1, EventType::Open, 0, 0, trace::kOpenRead));
    buffer.push(ev(2, EventType::Seek, 100, 500));
    buffer.push(ev(3, EventType::Close, 600));

    const OpStream stream = convertTrace(buffer);
    const auto reads = opsOfType(stream, OpType::Read);
    ASSERT_EQ(reads.size(), 2u);
    EXPECT_EQ(reads[0].offset, 0u);
    EXPECT_EQ(reads[0].length, 100u);
    EXPECT_EQ(reads[1].offset, 500u);
    EXPECT_EQ(reads[1].length, 100u);
}

TEST(Converter, ReadWriteOpenUsesDirtyHint)
{
    trace::TraceBuffer buffer;
    buffer.push(ev(1, EventType::Open, 0, 0,
                   trace::kOpenRead | trace::kOpenWrite));
    buffer.push(ev(2, EventType::Seek, 100, 100, kDirtyHint)); // write
    buffer.push(ev(3, EventType::Close, 300));                 // read

    const OpStream stream = convertTrace(buffer);
    const auto writes = opsOfType(stream, OpType::Write);
    const auto reads = opsOfType(stream, OpType::Read);
    ASSERT_EQ(writes.size(), 1u);
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_EQ(writes[0].length, 100u);
    EXPECT_EQ(reads[0].offset, 100u);
    EXPECT_EQ(reads[0].length, 200u);
}

TEST(Converter, TruncateOnOpenEmitsTruncate)
{
    trace::TraceBuffer buffer;
    buffer.push(ev(1, EventType::Open, 0, 0,
                   trace::kOpenWrite | trace::kOpenTruncate));
    buffer.push(ev(2, EventType::Close, 0));

    const OpStream stream = convertTrace(buffer);
    const auto truncs = opsOfType(stream, OpType::Truncate);
    ASSERT_EQ(truncs.size(), 1u);
    EXPECT_EQ(truncs[0].length, 0u);
    // The truncate precedes the open op.
    EXPECT_EQ(stream.ops[0].type, OpType::Truncate);
    EXPECT_EQ(stream.ops[1].type, OpType::Open);
}

TEST(Converter, OpenCloseCarryModes)
{
    trace::TraceBuffer buffer;
    buffer.push(ev(1, EventType::Open, 0, 0, trace::kOpenWrite));
    buffer.push(ev(2, EventType::Close, 0));
    const OpStream stream = convertTrace(buffer);
    const auto opens = opsOfType(stream, OpType::Open);
    ASSERT_EQ(opens.size(), 1u);
    EXPECT_TRUE(opens[0].openForWrite);
    EXPECT_FALSE(opens[0].openForRead);
    EXPECT_EQ(opsOfType(stream, OpType::Close).size(), 1u);
}

TEST(Converter, DeleteTruncateFsyncMigrateMapDirectly)
{
    trace::TraceBuffer buffer;
    buffer.push(ev(1, EventType::Open, 0, 0, trace::kOpenWrite));
    buffer.push(ev(2, EventType::Fsync));
    buffer.push(ev(3, EventType::Close, 0));
    buffer.push(ev(4, EventType::Truncate, 0, 1024));
    buffer.push(ev(5, EventType::Delete));
    Event mig = ev(6, EventType::Migrate);
    mig.targetClient = 9;
    buffer.push(mig);
    buffer.push(ev(7, EventType::EndOfTrace));

    const OpStream stream = convertTrace(buffer);
    EXPECT_EQ(opsOfType(stream, OpType::Fsync).size(), 1u);
    const auto truncs = opsOfType(stream, OpType::Truncate);
    ASSERT_EQ(truncs.size(), 1u);
    EXPECT_EQ(truncs[0].length, 1024u);
    EXPECT_EQ(opsOfType(stream, OpType::Delete).size(), 1u);
    const auto migs = opsOfType(stream, OpType::Migrate);
    ASSERT_EQ(migs.size(), 1u);
    EXPECT_EQ(migs[0].targetClient, 9);
    EXPECT_EQ(opsOfType(stream, OpType::End).size(), 1u);
}

TEST(Converter, OrphanEventsCountedNotFatal)
{
    trace::TraceBuffer buffer;
    buffer.push(ev(1, EventType::Seek, 100, 200)); // no open
    buffer.push(ev(2, EventType::Close, 300));     // no open
    ConvertStats stats;
    const OpStream stream = convertTrace(buffer, &stats);
    EXPECT_EQ(stats.orphanEvents, 2u);
    EXPECT_TRUE(opsOfType(stream, OpType::Read).empty());
    EXPECT_TRUE(opsOfType(stream, OpType::Write).empty());
}

TEST(Converter, BackwardSeekTransfersNothing)
{
    trace::TraceBuffer buffer;
    buffer.push(ev(1, EventType::Open, 1000, 0, trace::kOpenRead));
    buffer.push(ev(2, EventType::Seek, 1000, 0)); // rewind, no I/O
    buffer.push(ev(3, EventType::Close, 0));      // still at 0
    const OpStream stream = convertTrace(buffer);
    EXPECT_TRUE(opsOfType(stream, OpType::Read).empty());
}

TEST(Converter, HeaderCarriesThrough)
{
    trace::TraceBuffer buffer;
    buffer.header.traceIndex = 4;
    buffer.header.clientCount = 12;
    buffer.header.duration = 999;
    const OpStream stream = convertTrace(buffer);
    EXPECT_EQ(stream.traceIndex, 4);
    EXPECT_EQ(stream.clientCount, 12u);
    EXPECT_EQ(stream.duration, 999);
}

TEST(OpTotals, CountsByteAndOpCounts)
{
    OpStream stream;
    Op write;
    write.type = OpType::Write;
    write.length = 100;
    stream.ops.push_back(write);
    stream.ops.push_back(write);
    Op read;
    read.type = OpType::Read;
    read.length = 50;
    stream.ops.push_back(read);
    const OpStreamTotals t = totals(stream);
    EXPECT_EQ(t.writeBytes, 200u);
    EXPECT_EQ(t.writes, 2u);
    EXPECT_EQ(t.readBytes, 50u);
    EXPECT_EQ(t.reads, 1u);
}

TEST(OpNames, AllDistinct)
{
    std::set<std::string> names;
    for (int t = 0; t <= static_cast<int>(OpType::End); ++t)
        names.insert(opTypeName(static_cast<OpType>(t)));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(OpType::End) + 1);
}

} // namespace
} // namespace nvfs::prep
