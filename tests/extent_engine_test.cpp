/**
 * @file
 * Differential tests of the extent-granularity engine against the
 * per-block legacy engine.  The extent engine must be *byte-identical*
 * — every Metrics counter, including the per-cause server-write
 * histogram, must match the legacy engine on every trace, model, and
 * consistency mode — and the BlockCache range operations must leave
 * the cache in exactly the state the equivalent per-block loop would.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "cache/block_cache.hpp"
#include "core/client/cluster_sim.hpp"
#include "core/lifetime/next_modify.hpp"
#include "core/sim/experiments.hpp"
#include "util/rng.hpp"

namespace nvfs::core {
namespace {

using cache::BlockCache;
using cache::BlockId;
using cache::PolicyKind;

constexpr double kScale = 0.02;

/** Run one cluster simulation with full config control. */
Metrics
runCluster(const prep::OpStream &ops, const ClusterConfig &config)
{
    ClusterSim sim(config,
                   std::max<std::uint32_t>(1, ops.clientCount));
    return sim.run(ops);
}

/** Small caches so every trace forces evictions in both memories. */
ModelConfig
tinyModel(ModelKind kind)
{
    ModelConfig model;
    model.kind = kind;
    model.volatileBytes = 48 * kBlockSize;
    model.nvramBytes = 16 * kBlockSize;
    return model;
}

// The tentpole acceptance check: 8 traces x 3 models x block-level
// callbacks on/off, extent vs legacy, identical Metrics (operator==
// covers the per-cause byte histogram and both absorbed counters).
TEST(ExtentEngineDifferential, MatchesLegacyOnStandardTraces)
{
    const ModelKind kinds[] = {ModelKind::Volatile,
                               ModelKind::WriteAside,
                               ModelKind::Unified};
    for (int trace = 1; trace <= 8; ++trace) {
        const auto &ops = standardOps(trace, kScale);
        for (ModelKind kind : kinds) {
            for (bool callbacks : {false, true}) {
                ClusterConfig config;
                config.model = tinyModel(kind);
                config.blockLevelCallbacks = callbacks;
                config.model.extentOps = true;
                const Metrics extent = runCluster(ops, config);
                config.model.extentOps = false;
                const Metrics legacy = runCluster(ops, config);
                EXPECT_EQ(extent, legacy)
                    << "trace " << trace << " model "
                    << modelKindName(kind) << " callbacks "
                    << callbacks;
            }
        }
    }
}

// Non-LRU NVRAM policies exercise the per-block fallback paths and
// the zero-eviction insertRange batching (whose policy-notification
// regrouping must be invisible to Random/Clock/Omniscient state).
TEST(ExtentEngineDifferential, MatchesLegacyUnderNonLruPolicies)
{
    for (int trace : {1, 4}) {
        const auto &ops = standardOps(trace, kScale);
        const auto &oracle = standardOracle(trace, kScale);
        for (PolicyKind policy :
             {PolicyKind::Random, PolicyKind::Clock,
              PolicyKind::Omniscient}) {
            for (ModelKind kind :
                 {ModelKind::WriteAside, ModelKind::Unified}) {
                ClusterConfig config;
                config.model = tinyModel(kind);
                config.model.nvramPolicy = policy;
                config.model.oracle = &oracle;
                config.model.extentOps = true;
                const Metrics extent = runCluster(ops, config);
                config.model.extentOps = false;
                const Metrics legacy = runCluster(ops, config);
                EXPECT_EQ(extent, legacy)
                    << "trace " << trace << " model "
                    << modelKindName(kind) << " policy "
                    << cache::policyName(policy);
            }
        }
    }
}

// The dirty-preference ablation disables most write batching (victim
// choice observes dirty state mid-run); the fallback must still be
// exact.
TEST(ExtentEngineDifferential, MatchesLegacyWithDirtyPreference)
{
    for (int trace : {2, 3}) {
        const auto &ops = standardOps(trace, kScale);
        for (ModelKind kind :
             {ModelKind::Volatile, ModelKind::WriteAside}) {
            ClusterConfig config;
            config.model = tinyModel(kind);
            config.model.dirtyPreference = true;
            config.model.extentOps = true;
            const Metrics extent = runCluster(ops, config);
            config.model.extentOps = false;
            const Metrics legacy = runCluster(ops, config);
            EXPECT_EQ(extent, legacy)
                << "trace " << trace << " model "
                << modelKindName(kind);
        }
    }
}

// Prep-layer coalescing folds adjacent same-time sequential sub-ops
// into one extent before dispatch; it must be invisible in every
// counter, with and without block-level callbacks.
TEST(ExtentEngineDifferential, CoalescingIsInvisible)
{
    const ModelKind kinds[] = {ModelKind::Volatile,
                               ModelKind::WriteAside,
                               ModelKind::Unified};
    for (int trace = 1; trace <= 8; ++trace) {
        const auto &ops = standardOps(trace, kScale);
        for (ModelKind kind : kinds) {
            for (bool callbacks : {false, true}) {
                ClusterConfig config;
                config.model = tinyModel(kind);
                config.blockLevelCallbacks = callbacks;
                config.coalesce = true;
                const Metrics merged = runCluster(ops, config);
                config.coalesce = false;
                const Metrics split = runCluster(ops, config);
                EXPECT_EQ(merged, split)
                    << "trace " << trace << " model "
                    << modelKindName(kind) << " callbacks "
                    << callbacks;
            }
        }
    }
}

/** Full observable state of a BlockCache, for exact comparison. */
struct CacheState
{
    std::vector<BlockId> blocks;
    std::vector<BlockId> lru;
    std::vector<std::vector<util::ByteRange>> dirty;

    bool operator==(const CacheState &other) const = default;
};

CacheState
snapshot(const BlockCache &cache)
{
    CacheState state;
    state.blocks = cache.allBlocks();
    state.lru = cache.lruOrder();
    for (const BlockId &id : state.blocks)
        state.dirty.push_back(cache.peek(id)->dirty.runs());
    return state;
}

// Randomized equivalence: drive one cache through the range
// operations and a twin through the per-block calls, and require the
// same resident set, LRU order, per-block dirty runs, absorbed-byte
// returns, and victim sequence at every step.
TEST(BlockCacheRangeOps, RandomizedEquivalenceWithPerBlock)
{
    for (bool native : {false, true}) {
        constexpr std::uint64_t kCapacity = 24;
        BlockCache ranged(kCapacity, nullptr, native);
        BlockCache blocked(kCapacity, nullptr, native);
        util::Rng rng(native ? 0xfeedULL : 0xbeefULL);
        TimeUs now = 0;

        for (int step = 0; step < 4000; ++step) {
            now += rng.uniformInt(0, 3);
            const FileId file = rng.uniformInt(1, 4);
            const auto first =
                static_cast<std::uint32_t>(rng.uniformInt(0, 30));
            const auto last = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(30,
                                        first + rng.uniformInt(0, 7)));
            const auto run = ranged.probeRange(file, first, last);
            switch (rng.uniformInt(0, 5)) {
              case 0: { // insertRange over a fully-absent run
                if (run.resident ||
                    ranged.freeBlocks() < run.end - first) {
                    break;
                }
                ranged.insertRange(file, first, run.end - 1, now);
                for (std::uint32_t b = first; b < run.end; ++b)
                    blocked.insert({file, b}, now);
                break;
              }
              case 1: { // touchRange over whatever is resident
                ranged.touchRange(file, first, last, now);
                for (std::uint32_t b = first; b <= last; ++b) {
                    if (blocked.contains({file, b}))
                        blocked.touch({file, b}, now);
                }
                break;
              }
              case 2: { // markDirtyRange over a fully-resident run
                if (!run.resident)
                    break;
                const std::uint32_t end = run.end - 1;
                const Bytes begin =
                    Bytes{first} * kBlockSize +
                    rng.uniformInt(0, kBlockSize - 1);
                const Bytes limit = Bytes{end + 1} * kBlockSize;
                const Bytes length =
                    std::min<Bytes>(limit - begin,
                                    1 + rng.uniformInt(0, kBlockSize));
                const Bytes absorbed_ranged =
                    ranged.markDirtyRange(file, begin, length, now);
                Bytes absorbed_blocked = 0;
                forEachBlock(file, begin, length,
                             [&](const BlockId &id, Bytes b, Bytes e) {
                                 absorbed_blocked +=
                                     blocked.peek(id)->dirty
                                         .overlapBytes(b, e);
                                 blocked.markDirty(id, b, e, now);
                             });
                EXPECT_EQ(absorbed_ranged, absorbed_blocked);
                break;
              }
              case 3: { // evict one victim
                const auto victim = ranged.chooseVictim(now);
                const auto twin = blocked.chooseVictim(now);
                ASSERT_EQ(victim.has_value(), twin.has_value());
                if (victim) {
                    EXPECT_EQ(*victim, *twin);
                    ranged.remove(*victim);
                    blocked.remove(*twin);
                }
                break;
              }
              case 4: { // remove a specific resident block
                if (ranged.contains({file, first})) {
                    ranged.remove({file, first});
                    blocked.remove({file, first});
                }
                break;
              }
              case 5: { // peekRange must see the per-block view
                std::vector<BlockId> seen;
                ranged.peekRange(file, first, last,
                                 [&](const cache::CacheBlock &block) {
                                     seen.push_back(block.id);
                                 });
                std::vector<BlockId> expected;
                for (std::uint32_t b = first; b <= last; ++b) {
                    if (blocked.contains({file, b}))
                        expected.push_back({file, b});
                }
                EXPECT_EQ(seen, expected);
                break;
              }
            }
            if (step % 256 == 0)
                ASSERT_EQ(snapshot(ranged), snapshot(blocked));
        }
        EXPECT_EQ(snapshot(ranged), snapshot(blocked));

        // Drain: the victim sequences must agree to the last block.
        while (ranged.size() > 0) {
            const auto victim = ranged.chooseVictim(now);
            const auto twin = blocked.chooseVictim(now);
            ASSERT_TRUE(victim.has_value());
            ASSERT_TRUE(twin.has_value());
            EXPECT_EQ(*victim, *twin);
            ranged.remove(*victim);
            blocked.remove(*twin);
        }
        EXPECT_EQ(blocked.size(), 0u);
    }
}

// The restructured NextModifyIndex (per-file block tables + live
// runs) must answer exactly like the straightforward per-block
// reference built with element-wise maps.
TEST(NextModifyIndexDifferential, MatchesPerBlockReference)
{
    const auto &ops = standardOps(3, kScale);
    const NextModifyIndex index(ops);

    std::map<std::pair<FileId, std::uint32_t>, std::vector<TimeUs>>
        reference;
    std::map<FileId, std::set<std::uint32_t>> live;
    const prep::OpColumns &col = ops.ops;
    for (std::size_t i = 0; i < col.size(); ++i) {
        const TimeUs time = col.time[i];
        const FileId file = col.file[i];
        switch (col.type[i]) {
          case prep::OpType::Write:
            forEachBlock(file, col.offset[i], col.length[i],
                         [&](const BlockId &id, Bytes, Bytes) {
                             reference[{file, id.index}]
                                 .push_back(time);
                             live[file].insert(id.index);
                         });
            break;
          case prep::OpType::Delete: {
            auto it = live.find(file);
            if (it == live.end())
                break;
            for (std::uint32_t block : it->second)
                reference[{file, block}].push_back(time);
            live.erase(it);
            break;
          }
          case prep::OpType::Truncate: {
            auto it = live.find(file);
            if (it == live.end())
                break;
            const auto first_dead = static_cast<std::uint32_t>(
                blocksCovering(col.length[i]));
            auto bit = it->second.lower_bound(first_dead);
            while (bit != it->second.end()) {
                reference[{file, *bit}].push_back(time);
                bit = it->second.erase(bit);
            }
            break;
          }
          default:
            break;
        }
    }

    EXPECT_EQ(index.blockCount(), reference.size());
    for (const auto &[key, times] : reference) {
        const BlockId id{key.first, key.second};
        // Probe before the first, between every pair, and after the
        // last modification.
        EXPECT_EQ(index.nextModify(id, 0), times.front());
        for (std::size_t i = 0; i + 1 < times.size(); ++i) {
            const TimeUs expected = times[i + 1];
            EXPECT_EQ(index.nextModify(id, times[i]), expected);
        }
        EXPECT_EQ(index.nextModify(id, times.back()), kTimeInfinity);
    }
    EXPECT_EQ(index.nextModify({kNoFile, 7}, 0), kTimeInfinity);
}

// Handcrafted stream covering the Delete/Truncate fan-out and the
// zero-length-write guard of the run-based index.
TEST(NextModifyIndexDifferential, DeleteAndTruncateFanOut)
{
    std::vector<prep::Op> ops;
    auto push = [&](TimeUs t, prep::OpType type, FileId f, Bytes off,
                    Bytes len) {
        prep::Op op;
        op.time = t;
        op.type = type;
        op.file = f;
        op.offset = off;
        op.length = len;
        ops.push_back(op);
    };
    using prep::OpType;
    push(10, OpType::Write, 1, 0, 3 * kBlockSize);      // blocks 0-2
    push(20, OpType::Write, 1, 6 * kBlockSize, 100);    // block 6
    push(25, OpType::Write, 1, 0, 0);                   // no blocks
    push(30, OpType::Truncate, 1, 0, 2 * kBlockSize);   // kills 2, 6
    push(40, OpType::Write, 1, 2 * kBlockSize, 1);      // block 2 again
    push(50, OpType::Delete, 1, 0, 0);                  // kills 0,1,2
    push(60, OpType::Write, 2, kBlockSize - 1, 2);      // blocks 0,1

    prep::OpStream stream;
    stream.clientCount = 1;
    stream.ops = std::move(ops);
    const NextModifyIndex index(stream);

    EXPECT_EQ(index.blockCount(), 6u); // file1: 0,1,2,6; file2: 0,1
    EXPECT_EQ(index.nextModify({1, 0}, 10), 50u);
    EXPECT_EQ(index.nextModify({1, 1}, 10), 50u);
    EXPECT_EQ(index.nextModify({1, 2}, 10), 30u);
    EXPECT_EQ(index.nextModify({1, 2}, 30), 40u);
    EXPECT_EQ(index.nextModify({1, 2}, 40), 50u);
    EXPECT_EQ(index.nextModify({1, 6}, 20), 30u);
    EXPECT_EQ(index.nextModify({1, 6}, 30), kTimeInfinity);
    EXPECT_EQ(index.nextModify({2, 0}, 0), 60u);
    EXPECT_EQ(index.nextModify({2, 1}, 0), 60u);
    EXPECT_EQ(index.nextModify({2, 2}, 0), kTimeInfinity);
}

} // namespace
} // namespace nvfs::core
