/**
 * @file
 * Randomized stress tests: drive each client cache model with
 * thousands of random operations and check the structural invariants
 * after every step — plus determinism and byte-conservation checks
 * for the whole cluster simulation, and tests for the workload
 * characterization module.
 */

#include <gtest/gtest.h>

#include "core/client/cluster_sim.hpp"
#include "core/client/unified_model.hpp"
#include "core/client/volatile_model.hpp"
#include "core/client/write_aside_model.hpp"
#include "core/sim/experiments.hpp"
#include "prep/characterize.hpp"

namespace nvfs {
namespace {

using core::Metrics;
using core::ModelConfig;
using core::ModelKind;

class ModelStress : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    Metrics metrics;
    core::FileSizeMap sizes;
    util::Rng rng{GetParam()};

    ModelConfig
    config(ModelKind kind)
    {
        ModelConfig c;
        c.kind = kind;
        c.volatileBytes = 16 * kBlockSize;
        c.nvramBytes = 8 * kBlockSize;
        return c;
    }

    /** One random operation against the model. */
    template <typename Model>
    void
    step(Model &model, TimeUs now)
    {
        const auto file = static_cast<FileId>(rng.uniformInt(1, 12));
        const Bytes offset = rng.uniformInt(0, 6) * kBlockSize +
                             rng.uniformInt(0, kBlockSize - 1);
        const Bytes length = 1 + rng.uniformInt(0, 2 * kBlockSize);
        auto &size = sizes[file];
        switch (rng.uniformInt(0, 9)) {
          case 0:
          case 1:
          case 2:
          case 3:
            size = std::max(size, offset + length);
            model.write(file, offset, length, now);
            break;
          case 4:
          case 5:
          case 6:
            size = std::max(size, offset + length);
            model.read(file, offset, length, now);
            break;
          case 7:
            model.fsync(file, now);
            break;
          case 8:
            model.removeFile(file, now);
            sizes.erase(file);
            break;
          default:
            model.recall(file, core::WriteCause::Callback, now);
            break;
        }
    }
};

TEST_P(ModelStress, WriteAsideInvariantsHoldUnderChaos)
{
    core::WriteAsideModel model(config(ModelKind::WriteAside),
                                metrics, sizes, rng);
    for (TimeUs now = 1; now <= 3000; ++now) {
        step(model, now);
        if (now % 100 == 0)
            model.checkInvariants();
        ASSERT_LE(model.volatileCache().size(),
                  model.volatileCache().capacityBlocks());
        ASSERT_LE(model.nvramCache().size(),
                  model.nvramCache().capacityBlocks());
    }
    model.checkInvariants();
    model.finish(3001);
    EXPECT_EQ(model.dirtyBytes(), 0u);
}

TEST_P(ModelStress, UnifiedInvariantsHoldUnderChaos)
{
    core::UnifiedModel model(config(ModelKind::Unified), metrics,
                             sizes, rng);
    for (TimeUs now = 1; now <= 3000; ++now) {
        step(model, now);
        if (now % 100 == 0)
            model.checkInvariants();
    }
    model.checkInvariants();
    model.finish(3001);
    EXPECT_EQ(model.dirtyBytes(), 0u);
}

TEST_P(ModelStress, VolatileDirtyNeverExceedsCache)
{
    core::VolatileModel model(config(ModelKind::Volatile), metrics,
                              sizes, rng);
    for (TimeUs now = 1; now <= 3000; ++now) {
        step(model, now);
        ASSERT_LE(model.cache().dirtyBytes(),
                  model.cache().size() * kBlockSize);
        ASSERT_LE(model.cache().size(),
                  model.cache().capacityBlocks());
    }
}

TEST_P(ModelStress, CrashAfterChaosIsClean)
{
    for (const auto kind :
         {ModelKind::Volatile, ModelKind::WriteAside,
          ModelKind::Unified}) {
        Metrics local;
        core::FileSizeMap local_sizes;
        util::Rng local_rng{GetParam() ^ 0xC4A5};
        auto model = core::makeClientModel(config(kind), local,
                                           local_sizes, local_rng);
        for (TimeUs now = 1; now <= 500; ++now) {
            const auto file =
                static_cast<FileId>(local_rng.uniformInt(1, 6));
            local_sizes[file] =
                std::max(local_sizes[file], Bytes{4 * kBlockSize});
            model->write(file, 0,
                         1 + local_rng.uniformInt(0, kBlockSize - 1),
                         now);
        }
        model->crash(501);
        EXPECT_EQ(model->dirtyBytes(), 0u) << core::modelKindName(kind);
        if (kind == ModelKind::Volatile) {
            EXPECT_GT(local.lostDirtyBytes, 0u);
        } else {
            EXPECT_EQ(local.lostDirtyBytes, 0u);
            EXPECT_GT(local.serverWrites(core::WriteCause::Recovery),
                      0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelStress,
                         ::testing::Values(101, 202, 303, 404));

// ----------------------------------------------- cluster properties

class TraceParam
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(TraceParam, ClusterSimDeterministicAndConservative)
{
    const auto [trace_number, kind_index] = GetParam();
    const auto &ops = core::standardOps(trace_number, 0.02);
    core::ModelConfig model;
    model.kind = static_cast<core::ModelKind>(kind_index);
    model.volatileBytes = 4 * kMiB;
    model.nvramBytes = kMiB;

    const Metrics a = core::runClientSim(ops, model, 9);
    const Metrics b = core::runClientSim(ops, model, 9);
    EXPECT_EQ(a.totalServerWrites(), b.totalServerWrites());
    EXPECT_EQ(a.serverReadBytes, b.serverReadBytes);
    EXPECT_EQ(a.busBytes, b.busBytes);

    // Conservation: app bytes equal the generator's totals.
    const auto totals = prep::totals(ops);
    EXPECT_EQ(a.appWriteBytes, totals.writeBytes);
    EXPECT_EQ(a.appReadBytes, totals.readBytes);
    // Server writes can never exceed app writes by more than block
    // rounding (each flush moves at most a whole block per dirty
    // block; absorbed bytes only shrink it).
    EXPECT_LT(a.netWriteTrafficPct(), 101.0);
}

INSTANTIATE_TEST_SUITE_P(
    TracesAndModels, TraceParam,
    ::testing::Combine(::testing::Values(1, 3, 7),
                       ::testing::Values(0, 1, 2)));

// ----------------------------------------------- characterization

TEST(Characterize, HandcraftedStream)
{
    prep::OpStream ops;
    auto push = [&](prep::OpType type, TimeUs t, Bytes off, Bytes len) {
        prep::Op op;
        op.type = type;
        op.time = t;
        op.client = 0;
        op.pid = 1;
        op.file = 1;
        op.offset = off;
        op.length = len;
        op.openForWrite = type == prep::OpType::Open;
        ops.ops.push_back(op);
    };
    push(prep::OpType::Open, 0, 0, 0);
    push(prep::OpType::Write, 1, 0, 1000);
    push(prep::OpType::Write, 2, 1000, 1000); // sequential
    push(prep::OpType::Write, 3, 5000, 1000); // not sequential
    push(prep::OpType::Close, secondsUs(2), 0, 0);

    const auto profile = prep::characterize(ops);
    EXPECT_EQ(profile.writeBytes, 3000u);
    EXPECT_EQ(profile.opens, 1u);
    EXPECT_DOUBLE_EQ(profile.writeSize.mean(), 1000.0);
    EXPECT_NEAR(profile.sequentialWriteFraction, 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(profile.openSeconds.mean(), 2.0, 1e-6);
    EXPECT_DOUBLE_EQ(profile.writeOnlyOpenFraction, 1.0);
    EXPECT_EQ(static_cast<Bytes>(profile.fileSize.max()), 6000u);
}

TEST(Characterize, GeneratedTraceMatchesSpriteShape)
{
    const auto &ops = core::standardOps(7, 0.05);
    const auto profile = prep::characterize(ops);
    // Reads dominate writes at the application level (~4:1).
    EXPECT_GT(profile.readWriteRatio(), 2.5);
    EXPECT_LT(profile.readWriteRatio(), 6.0);
    // Most opens are single-mode, most of them read-only.
    EXPECT_GT(profile.readOnlyOpenFraction, 0.5);
    // Files are small (the 1991 study's hallmark).
    EXPECT_LT(profile.fileSize.mean(), 256.0 * 1024);
    const std::string text = profile.render("check");
    EXPECT_NE(text.find("read : write"), std::string::npos);
}

// -------------------------------------------------- dynamic sizing

TEST(DynamicSizing, ShrinkEvictsAndNeverOverflows)
{
    const auto &ops = core::standardOps(7, 0.02);
    core::ModelConfig model;
    model.kind = core::ModelKind::Volatile;
    model.volatileBytes = 2 * kMiB;
    model.dynamicSizing = true;
    model.dynamicMinFraction = 0.25;
    const Metrics dynamic = core::runClientSim(ops, model);

    model.dynamicSizing = false;
    const Metrics fixed = core::runClientSim(ops, model);

    // Shrinking costs read traffic; app bytes unchanged.
    EXPECT_GE(dynamic.serverReadBytes, fixed.serverReadBytes);
    EXPECT_EQ(dynamic.appReadBytes, fixed.appReadBytes);
    EXPECT_EQ(dynamic.appWriteBytes, fixed.appWriteBytes);
}

} // namespace
} // namespace nvfs
