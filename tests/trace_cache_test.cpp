/**
 * @file
 * Persistent trace-cache tests: binary round-trip of the op-stream
 * codec, rejection of truncated / corrupted / stale / mismatched
 * cache files, and the standardOps() integration — a planted cache
 * file must be served without regeneration, and a corrupt one must
 * fall back to generation and be repaired on disk.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sim/experiments.hpp"
#include "prep/op_cache.hpp"
#include "prep/ops.hpp"

namespace nvfs {
namespace {

/** Scoped NVFS_TRACE_CACHE setting; restores "unset" on destruction. */
class ScopedCacheDir
{
  public:
    explicit ScopedCacheDir(const std::string &dir)
    {
        ::setenv("NVFS_TRACE_CACHE", dir.c_str(), 1);
    }
    ~ScopedCacheDir() { ::unsetenv("NVFS_TRACE_CACHE"); }
};

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** A small hand-built stream that satisfies the decode invariants. */
prep::OpStream
syntheticStream()
{
    prep::OpStream stream;
    stream.traceIndex = 1;
    stream.clientCount = 3;
    stream.duration = 5000;
    prep::Op op;
    for (int i = 0; i < 200; ++i) {
        op.time = i * 25;
        op.file = static_cast<FileId>(i % 7);
        op.offset = static_cast<Bytes>(i) * kBlockSize;
        op.length = 100 + i;
        op.pid = static_cast<ProcId>(i % 5);
        op.client = static_cast<ClientId>(i % 3);
        op.targetClient = static_cast<ClientId>((i + 1) % 3);
        op.type = static_cast<prep::OpType>(
            i % (static_cast<int>(prep::OpType::End) + 1));
        op.openForWrite = i % 2 == 0;
        op.openForRead = i % 2 != 0;
        stream.ops.push_back(op);
    }
    return stream;
}

void
expectStreamsEqual(const prep::OpStream &a, const prep::OpStream &b)
{
    EXPECT_EQ(a.traceIndex, b.traceIndex);
    EXPECT_EQ(a.clientCount, b.clientCount);
    EXPECT_EQ(a.duration, b.duration);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    EXPECT_TRUE(a.ops == b.ops);
}

TEST(TraceCacheCodecTest, RoundTrip)
{
    const prep::OpStream stream = syntheticStream();
    const auto image = prep::encodeOpsCache(stream, 0xDEADBEEFu);
    EXPECT_EQ(image.size(), prep::kOpsCacheHeaderSize +
                                stream.ops.size() *
                                    prep::kOpsCacheBytesPerOp);
    const auto decoded =
        prep::decodeOpsCache(image.data(), image.size(), 0xDEADBEEFu);
    ASSERT_TRUE(decoded.has_value());
    expectStreamsEqual(*decoded, stream);
}

TEST(TraceCacheCodecTest, RoundTripEmptyStream)
{
    prep::OpStream stream;
    stream.traceIndex = 4;
    stream.clientCount = 1;
    stream.duration = 0;
    const auto image = prep::encodeOpsCache(stream, 1);
    const auto decoded =
        prep::decodeOpsCache(image.data(), image.size(), 1);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->ops.empty());
    EXPECT_EQ(decoded->traceIndex, 4);
}

TEST(TraceCacheCodecTest, RejectsTruncated)
{
    const auto image =
        prep::encodeOpsCache(syntheticStream(), 0xDEADBEEFu);
    // Every strictly shorter prefix must be rejected, including ones
    // shorter than the header itself.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{7},
          prep::kOpsCacheHeaderSize - 1, prep::kOpsCacheHeaderSize,
          image.size() - 1, image.size() - 38}) {
        EXPECT_FALSE(
            prep::decodeOpsCache(image.data(), keep, 0xDEADBEEFu)
                .has_value())
            << "accepted truncation to " << keep << " bytes";
    }
}

TEST(TraceCacheCodecTest, RejectsCorruptedPayload)
{
    auto image = prep::encodeOpsCache(syntheticStream(), 0xDEADBEEFu);
    image[prep::kOpsCacheHeaderSize + 11] ^= 0x40;
    EXPECT_FALSE(
        prep::decodeOpsCache(image.data(), image.size(), 0xDEADBEEFu)
            .has_value());
}

TEST(TraceCacheCodecTest, RejectsStaleVersion)
{
    auto image = prep::encodeOpsCache(syntheticStream(), 0xDEADBEEFu);
    image[4] = static_cast<std::uint8_t>(prep::kOpsCacheVersion + 1);
    EXPECT_FALSE(
        prep::decodeOpsCache(image.data(), image.size(), 0xDEADBEEFu)
            .has_value());
}

TEST(TraceCacheCodecTest, RejectsWrongMagic)
{
    auto image = prep::encodeOpsCache(syntheticStream(), 0xDEADBEEFu);
    image[0] ^= 0xFF;
    EXPECT_FALSE(
        prep::decodeOpsCache(image.data(), image.size(), 0xDEADBEEFu)
            .has_value());
}

TEST(TraceCacheCodecTest, RejectsProfileHashMismatch)
{
    const auto image =
        prep::encodeOpsCache(syntheticStream(), 0xDEADBEEFu);
    EXPECT_FALSE(
        prep::decodeOpsCache(image.data(), image.size(), 0xDEADBEEEu)
            .has_value())
        << "a cache built under different profile parameters must "
           "not be served";
}

TEST(TraceCacheCodecTest, RejectsNonMonotonicTime)
{
    prep::OpStream stream = syntheticStream();
    stream.ops.time[50] = stream.ops.time[49] - 1;
    const auto image = prep::encodeOpsCache(stream, 2);
    EXPECT_FALSE(prep::decodeOpsCache(image.data(), image.size(), 2)
                     .has_value());
}

TEST(TraceCacheFileTest, StoreThenLoad)
{
    const std::string dir = freshDir("nvfs_cache_store");
    const std::string path = dir + "/roundtrip.nvfsops";
    const prep::OpStream stream = syntheticStream();
    ASSERT_TRUE(prep::storeCachedOps(path, stream, 99));
    const auto loaded = prep::loadCachedOps(path, 99);
    ASSERT_TRUE(loaded.has_value());
    expectStreamsEqual(*loaded, stream);
}

TEST(TraceCacheFileTest, LoadMissingFileIsQuietMiss)
{
    EXPECT_FALSE(
        prep::loadCachedOps(testing::TempDir() + "no_such.nvfsops", 1)
            .has_value());
}

TEST(TraceCacheFileTest, LoadRejectsGarbageFile)
{
    const std::string dir = freshDir("nvfs_cache_garbage");
    const std::string path = dir + "/garbage.nvfsops";
    std::ofstream(path) << "this is not a cache file at all";
    EXPECT_FALSE(prep::loadCachedOps(path, 1).has_value());
}

TEST(TraceCacheFileTest, StoreCreatesDirectory)
{
    const std::string dir = freshDir("nvfs_cache_mkdir");
    const std::string path = dir + "/nested/deeper/file.nvfsops";
    ASSERT_TRUE(prep::storeCachedOps(path, syntheticStream(), 5));
    EXPECT_TRUE(prep::loadCachedOps(path, 5).has_value());
}

TEST(TraceCacheFileTest, FileNameEncodesVersionTraceAndHash)
{
    EXPECT_EQ(prep::opsCacheFileName(6, 0x2CF46C3C86F53F28ull),
              "ops-v1-t6-2cf46c3c86f53f28.nvfsops");
}

// --- standardOps() integration -----------------------------------
//
// Each test below uses a scale value no other test (or bench) uses,
// because standardOps() memoizes per (paper, scale, dialect) for the
// process lifetime: a reused key would be served from memory and
// never touch the on-disk cache under test.

TEST(TraceCacheIntegrationTest, PlantedCacheFileSkipsGeneration)
{
    const int paper = 2;
    const double scale = 0.013;
    const std::string dir = freshDir("nvfs_cache_planted");

    // Plant a synthetic stream at the exact path standardOps() will
    // probe.  Generation would produce a very different stream, so
    // getting the synthetic one back proves the generator was
    // bypassed.
    const std::uint64_t hash =
        core::standardOpsFingerprint(paper, scale);
    const prep::OpStream planted = syntheticStream();
    ASSERT_TRUE(prep::storeCachedOps(
        dir + "/" + prep::opsCacheFileName(paper - 1, hash), planted,
        hash));

    const ScopedCacheDir env(dir);
    const prep::OpStream &served = core::standardOps(paper, scale);
    expectStreamsEqual(served, planted);
}

TEST(TraceCacheIntegrationTest, CorruptCacheFallsBackToGeneration)
{
    const int paper = 2;
    const double scale = 0.017;
    const std::string dir = freshDir("nvfs_cache_corrupt");
    const std::uint64_t hash =
        core::standardOpsFingerprint(paper, scale);
    const std::string path =
        dir + "/" + prep::opsCacheFileName(paper - 1, hash);

    // A corrupt file at the expected path: valid image with payload
    // damage, so every validation layer before the checksum passes.
    auto image = prep::encodeOpsCache(syntheticStream(), hash);
    image[prep::kOpsCacheHeaderSize + 3] ^= 0x01;
    {
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char *>(image.data()),
                  static_cast<std::streamsize>(image.size()));
    }

    const ScopedCacheDir env(dir);
    const prep::OpStream &served = core::standardOps(paper, scale);
    // Fallback generated a real trace, not the 200-op synthetic one.
    EXPECT_GT(served.ops.size(), 1000u);
    EXPECT_EQ(served.traceIndex, paper - 1);

    // And the bad file was replaced by a valid cache of the result.
    const auto repaired = prep::loadCachedOps(path, hash);
    ASSERT_TRUE(repaired.has_value());
    expectStreamsEqual(*repaired, served);
}

TEST(TraceCacheIntegrationTest, GenerationPopulatesCacheFile)
{
    const int paper = 2;
    const double scale = 0.019;
    const std::string dir = freshDir("nvfs_cache_populate");
    const ScopedCacheDir env(dir);

    const prep::OpStream &generated = core::standardOps(paper, scale);
    const std::uint64_t hash =
        core::standardOpsFingerprint(paper, scale);
    const auto cached = prep::loadCachedOps(
        dir + "/" + prep::opsCacheFileName(paper - 1, hash), hash);
    ASSERT_TRUE(cached.has_value())
        << "standardOps() must persist what it generated";
    expectStreamsEqual(*cached, generated);
}

TEST(TraceCacheIntegrationTest, FingerprintSeparatesParameters)
{
    const std::uint64_t base = core::standardOpsFingerprint(2, 0.013);
    EXPECT_NE(base, core::standardOpsFingerprint(3, 0.013));
    EXPECT_NE(base, core::standardOpsFingerprint(2, 0.014));
    EXPECT_NE(base, core::standardOpsFingerprint(2, 0.013, true));
}

} // namespace
} // namespace nvfs
