/**
 * @file
 * Fault-injection tests (nvfs::check): torn segment writes, power
 * failures mid-seal, dropped NVRAM writes, and the recovery
 * guarantees the paper's reliability argument rests on — after any
 * injected fault, roll-forward rebuilds a consistent inode map and
 * loses at most the data that was never made durable.
 */

#include <gtest/gtest.h>

#include "lfs/log.hpp"
#include "lfs/recovery.hpp"
#include "nvram/device.hpp"
#include "nvram/fault.hpp"
#include "server/file_server.hpp"
#include "util/audit.hpp"

namespace nvfs::lfs {

/** Test-only peer: corrupts log internals to prove the audits fire. */
class AuditTestPeer
{
  public:
    static void corruptStats(LfsLog &log) { ++log.stats_.dataBytes; }

    static void corruptLiveBytes(LfsLog &log)
    {
        ++log.segments_.back().liveBytes;
    }

    static void dropJournal(LfsLog &log) { log.journals_.pop_back(); }
};

namespace {

using nvram::FaultEvent;
using nvram::FaultPlan;
using nvram::NvramDevice;

LfsConfig
smallConfig()
{
    LfsConfig config;
    config.segmentBytes = 64 * kKiB;
    return config;
}

// ------------------------------------------------- FaultPlan parsing

TEST(FaultPlan, ParsesSpec)
{
    const auto plan =
        FaultPlan::fromSpec("torn-seal:2,power-fail:5,device-drop:1");
    ASSERT_TRUE(plan.has_value());
    FaultPlan mutable_plan = *plan;
    EXPECT_EQ(mutable_plan.onSeal(), nvram::SealFault::None);
    EXPECT_EQ(mutable_plan.onSeal(), nvram::SealFault::Torn);
    EXPECT_TRUE(mutable_plan.onDeviceWrite());
    EXPECT_FALSE(mutable_plan.onDeviceWrite());
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_FALSE(FaultPlan::fromSpec("torn-seal").has_value());
    EXPECT_FALSE(FaultPlan::fromSpec("torn-seal:x").has_value());
    EXPECT_FALSE(FaultPlan::fromSpec("torn-seal:0").has_value());
    EXPECT_FALSE(FaultPlan::fromSpec("torn-seal:-3").has_value());
    EXPECT_FALSE(FaultPlan::fromSpec("torn-seal:2x").has_value());
    EXPECT_FALSE(FaultPlan::fromSpec("meteor-strike:1").has_value());
    // Empty specs / items are benign: a plan with nothing armed.
    EXPECT_TRUE(FaultPlan::fromSpec("").has_value());
    EXPECT_TRUE(
        FaultPlan::fromSpec("torn-seal:1,,power-fail:2").has_value());
}

TEST(FaultPlan, FromEnvReadsNvfsFaults)
{
    ::setenv("NVFS_FAULTS", "power-fail:3", 1);
    const auto plan = FaultPlan::fromEnv();
    ::unsetenv("NVFS_FAULTS");
    ASSERT_TRUE(plan.has_value());
    EXPECT_FALSE(FaultPlan::fromEnv().has_value());
}

TEST(FaultPlan, RecordsFiredEvents)
{
    FaultPlan plan;
    plan.tearSealAt(2);
    EXPECT_FALSE(plan.anyFired());
    plan.onSeal();
    plan.onSeal();
    ASSERT_EQ(plan.fired().size(), 1u);
    EXPECT_EQ(plan.fired()[0],
              (FaultEvent{FaultEvent::Kind::TornSeal, 2}));
    EXPECT_EQ(plan.sealsSeen(), 2u);
}

TEST(FaultPlan, NvfsFaultsArmsTheFileServer)
{
    // NVFS_FAULTS must reach real drivers, not just unit tests: a
    // FileServer constructed with it set arms every log.
    ::setenv("NVFS_FAULTS", "torn-seal:1", 1);
    server::ServerConfig config;
    config.lfs.segmentBytes = 64 * kKiB;
    server::FileServer srv({"fs0"}, config);
    ::unsetenv("NVFS_FAULTS");

    LfsLog &log = srv.log(0);
    log.writeBlock(1, 0, kBlockSize);
    EXPECT_TRUE(log.seal(SealCause::Fsync));
    EXPECT_TRUE(log.faultFired());
    EXPECT_TRUE(log.segments().back().torn);

    // Unset env arms nothing.
    server::FileServer clean({"fs0"}, config);
    clean.log(0).writeBlock(1, 0, kBlockSize);
    EXPECT_TRUE(clean.log(0).seal(SealCause::Fsync));
    EXPECT_FALSE(clean.log(0).faultFired());
}

// --------------------------------------------------- torn seg writes

TEST(FaultInjection, TornFinalSegmentLosesOnlyItsOwnData)
{
    // Two good seals, then the final segment write is torn: its
    // summary never reaches the disk.  Recovery must stop there,
    // keeping everything sealed before the tear.
    LfsLog log(smallConfig());
    FaultPlan plan;
    plan.tearSealAt(3);
    log.setFaultPlan(&plan);

    log.writeBlock(1, 0, kBlockSize);
    EXPECT_TRUE(log.seal(SealCause::Fsync));
    log.writeBlock(2, 0, kBlockSize);
    EXPECT_TRUE(log.seal(SealCause::Fsync));
    log.writeBlock(3, 0, kBlockSize);
    EXPECT_TRUE(log.seal(SealCause::Fsync)); // torn: host can't tell
    EXPECT_TRUE(log.faultFired());
    EXPECT_TRUE(log.segments().back().torn);

    const RecoveryResult result = rollForward(log);
    EXPECT_TRUE(result.stoppedAtTornSegment);
    EXPECT_EQ(result.segmentsReplayed, 2u);
    // Everything durable before the tear survives...
    EXPECT_TRUE(result.inodes.locate(1, 0).has_value());
    EXPECT_TRUE(result.inodes.locate(2, 0).has_value());
    // ...and exactly the torn segment's data is lost.
    EXPECT_FALSE(result.inodes.locate(3, 0).has_value());
    EXPECT_EQ(result.inodes.blockCount(), 2u);
}

TEST(FaultInjection, TornMiddleSegmentTruncatesTheLog)
{
    // A tear in the middle: later segments were written after the
    // torn one, but recovery cannot parse past the missing summary —
    // the log effectively ends at the tear.
    LfsLog log(smallConfig());
    FaultPlan plan;
    plan.tearSealAt(2);
    log.setFaultPlan(&plan);

    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Fsync);
    log.writeBlock(2, 0, kBlockSize);
    log.seal(SealCause::Fsync); // torn
    log.writeBlock(3, 0, kBlockSize);
    log.seal(SealCause::Fsync); // written, but unreachable

    const RecoveryResult result = rollForward(log);
    EXPECT_TRUE(result.stoppedAtTornSegment);
    EXPECT_EQ(result.segmentsReplayed, 1u);
    EXPECT_TRUE(result.inodes.locate(1, 0).has_value());
    EXPECT_FALSE(result.inodes.locate(2, 0).has_value());
    EXPECT_FALSE(result.inodes.locate(3, 0).has_value());
}

TEST(FaultInjection, TornWriteGoesUndetectedWithoutTheFaultPlan)
{
    // The pre-nvfs::check behavior: the in-memory state after a torn
    // seal is indistinguishable from a successful one — stats,
    // invariants, and the live inode map all look perfectly healthy.
    // Only replaying recovery (or arming the plan) exposes the loss.
    LfsLog log(smallConfig());
    FaultPlan plan;
    plan.tearSealAt(1);
    log.setFaultPlan(&plan);
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Fsync);

    // The host's view: everything succeeded.
    EXPECT_NO_THROW(log.auditInvariants());
    EXPECT_TRUE(log.inodes().locate(1, 0).has_value());
    EXPECT_EQ(log.stats().segmentsWritten, 1u);

    // The disk's view: the data is gone.
    const RecoveryResult result = rollForward(log);
    EXPECT_TRUE(result.stoppedAtTornSegment);
    EXPECT_EQ(result.inodes.blockCount(), 0u);
    EXPECT_FALSE(result.inodes == log.inodes());
}

// ------------------------------------------------------ power failure

TEST(FaultInjection, PowerFailDropsTheOpenSegment)
{
    LfsLog log(smallConfig());
    FaultPlan plan;
    plan.powerFailAt(2);
    log.setFaultPlan(&plan);

    log.writeBlock(1, 0, kBlockSize);
    EXPECT_TRUE(log.seal(SealCause::Fsync));
    log.writeBlock(2, 0, kBlockSize);
    EXPECT_FALSE(log.seal(SealCause::Fsync)); // power died
    EXPECT_TRUE(log.faultFired());

    // Nothing half-written: the open segment's volatile contents are
    // simply gone and the log is still internally consistent.
    EXPECT_EQ(log.pendingBytes(), 0u);
    EXPECT_EQ(log.segments().size(), 1u);
    EXPECT_NO_THROW(log.auditInvariants());

    // Recovery agrees with the survivor's in-memory map: only the
    // unsynced tail was lost.
    const RecoveryResult result = rollForward(log);
    EXPECT_FALSE(result.stoppedAtTornSegment);
    EXPECT_TRUE(result.inodes == log.inodes());
    EXPECT_TRUE(result.inodes.locate(1, 0).has_value());
    EXPECT_FALSE(result.inodes.locate(2, 0).has_value());
}

TEST(FaultInjection, LogStaysUsableAfterPowerFail)
{
    LfsLog log(smallConfig());
    FaultPlan plan;
    plan.powerFailAt(1);
    log.setFaultPlan(&plan);

    log.writeBlock(1, 0, kBlockSize);
    EXPECT_FALSE(log.seal(SealCause::Fsync));

    // Post-recovery the log keeps working: new writes seal fine.
    log.writeBlock(1, 1, kBlockSize);
    EXPECT_TRUE(log.seal(SealCause::Fsync));
    EXPECT_NO_THROW(log.auditInvariants());
    const RecoveryResult result = rollForward(log);
    EXPECT_TRUE(result.inodes == log.inodes());
    EXPECT_TRUE(result.inodes.locate(1, 1).has_value());
    EXPECT_FALSE(result.inodes.locate(1, 0).has_value());
}

// -------------------------------------------------- NVRAM device drop

TEST(FaultInjection, DeviceDropKeepsPreviousContents)
{
    NvramDevice device;
    FaultPlan plan;
    plan.dropDeviceWriteAt(2);
    device.setFaultPlan(&plan);

    EXPECT_TRUE(device.put(7, 100));
    EXPECT_FALSE(device.put(7, 500)); // dropped mid-write
    EXPECT_TRUE(plan.anyFired());

    // The old value survives — a dropped write must not tear the tag.
    const auto stored = device.get(7);
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(*stored, 100u);
    EXPECT_EQ(device.usedBytes(), 100u);
    // The attempt still cost a write access.
    EXPECT_EQ(device.writeAccesses(), 2u);
}

// ------------------------------------------- audits catch corruption

TEST(AuditDetection, CorruptedStatsThrow)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Fsync);
    EXPECT_NO_THROW(log.auditInvariants());

    AuditTestPeer::corruptStats(log);
    EXPECT_THROW(log.auditInvariants(), util::AuditError);
}

TEST(AuditDetection, CorruptedLiveBytesThrow)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Fsync);

    AuditTestPeer::corruptLiveBytes(log);
    EXPECT_THROW(log.auditInvariants(), util::AuditError);
}

TEST(AuditDetection, MissingJournalThrows)
{
    LfsLog log(smallConfig());
    log.writeBlock(1, 0, kBlockSize);
    log.seal(SealCause::Fsync);

    AuditTestPeer::dropJournal(log);
    EXPECT_THROW(log.auditInvariants(), util::AuditError);
}

TEST(AuditDetection, CheckInvariantsStillPassesOnHealthyLog)
{
    LfsLog log(smallConfig());
    for (std::uint32_t b = 0; b < 20; ++b)
        log.writeBlock(1, b, kBlockSize);
    log.deleteFile(1);
    log.writeBlock(2, 0, 1000);
    log.seal(SealCause::Timeout);
    log.truncate(2, 500);
    EXPECT_NO_THROW(log.auditInvariants());
    log.checkInvariants(); // panic-wrapper flavor stays callable
}

} // namespace
} // namespace nvfs::lfs
