/**
 * @file
 * Table 2: the fate of all bytes written into a non-volatile client
 * cache of infinite size, summed across all eight traces and across
 * the six "typical" traces (excluding 3 and 4).
 */

#include "bench_util.hpp"
#include "workload/profile.hpp"

using namespace nvfs;

namespace {

struct Totals
{
    Bytes overwritten = 0;
    Bytes deleted = 0;
    Bytes calledBack = 0;
    Bytes concurrent = 0;
    Bytes remaining = 0;
    Bytes written = 0;

    void
    add(const core::LifetimeResult &life)
    {
        overwritten += life.fateBytes(core::ByteFate::Overwritten);
        deleted += life.fateBytes(core::ByteFate::Deleted);
        calledBack += life.fateBytes(core::ByteFate::CalledBack);
        concurrent += life.fateBytes(core::ByteFate::Concurrent);
        remaining += life.fateBytes(core::ByteFate::Remaining);
        written += life.totalWritten;
    }
};

std::string
mb(Bytes bytes)
{
    return nvfs::util::format("%.0f", nvfs::toMiB(bytes));
}

} // namespace

int
main()
{
    bench::header(
        "Table 2: summary of types of write traffic (infinite NVRAM)",
        "all traces: 85% absorbed, 8% called back; excluding 3 and 4: "
        "66% absorbed, 17% called back, 20% remaining");

    const double scale = core::benchScale();
    Totals all, typical;
    for (int t = 1; t <= 8; ++t) {
        const auto &life = core::standardLifetimes(t, scale);
        all.add(life);
        if (!workload::isBigSimTrace(t))
            typical.add(life);
    }

    // Paper percentages for the two column groups.
    const double paper_all[] = {2.86, 82.27, 85.13, 8.07, 0.42, 7.67};
    const double paper_no34[] = {7.36, 58.27, 65.63, 16.56, 0.36,
                                 20.17};

    util::TextTable table({"Traffic type", "MB (all)", "% all",
                           "paper", "MB (no 3/4)", "% no 3/4",
                           "paper"});
    auto addRow = [&](const std::string &name, Bytes a, Bytes b,
                      double pa, double pb) {
        table.addRow({name, mb(a),
                      bench::pct(util::percent(
                          static_cast<double>(a),
                          static_cast<double>(all.written))),
                      bench::pct(pa), mb(b),
                      bench::pct(util::percent(
                          static_cast<double>(b),
                          static_cast<double>(typical.written))),
                      bench::pct(pb)});
    };
    addRow("Overwritten", all.overwritten, typical.overwritten,
           paper_all[0], paper_no34[0]);
    addRow("Deleted", all.deleted, typical.deleted, paper_all[1],
           paper_no34[1]);
    addRow("Total absorbed", all.overwritten + all.deleted,
           typical.overwritten + typical.deleted, paper_all[2],
           paper_no34[2]);
    table.addSeparator();
    addRow("Called back", all.calledBack, typical.calledBack,
           paper_all[3], paper_no34[3]);
    addRow("Concurrent writes", all.concurrent, typical.concurrent,
           paper_all[4], paper_no34[4]);
    addRow("Total server writes", all.calledBack + all.concurrent,
           typical.calledBack + typical.concurrent,
           paper_all[3] + paper_all[4], paper_no34[3] + paper_no34[4]);
    table.addSeparator();
    addRow("Remaining", all.remaining, typical.remaining, paper_all[5],
           paper_no34[5]);
    table.addRow({"Total application writes", mb(all.written), "100.0",
                  "100.0", mb(typical.written), "100.0", "100.0"});
    std::printf("%s\n", table.render().c_str());
    return 0;
}
