/**
 * @file
 * The paper's two halves composed: the client simulation's
 * server-bound write stream drives the LFS file server, so the same
 * run shows how each placement of NVRAM — client cache, server write
 * buffer, or both — propagates all the way to disk write accesses.
 *
 * Section 3 opens with the observation this bench quantifies:
 * "Servers can also use NVRAM file caches to absorb write traffic,
 * producing reductions in the server-disk traffic similar to those in
 * the client-server traffic."
 */

#include "bench_util.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "end-to-end: client NVRAM -> server traffic -> disk accesses "
        "(Trace 7)",
        "NVRAM anywhere in the path cuts disk writes; client NVRAM "
        "also cuts the network, and the combination compounds");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);

    struct Row
    {
        const char *name;
        core::ModelKind kind;
        Bytes clientNvram;
        Bytes serverBuffer;
    };
    const Row rows[] = {
        {"volatile clients, plain server", core::ModelKind::Volatile,
         0, 0},
        {"volatile clients, server buffer", core::ModelKind::Volatile,
         0, 512 * kKiB},
        {"unified clients (1 MB), plain server",
         core::ModelKind::Unified, kMiB, 0},
        {"unified clients (1 MB), server buffer",
         core::ModelKind::Unified, kMiB, 512 * kKiB},
    };

    util::TextTable table({"configuration", "client->server MB",
                           "fsyncs at server", "disk writes",
                           "partial %", "disk MB"});
    for (const Row &row : rows) {
        core::ModelConfig model;
        model.kind = row.kind;
        model.volatileBytes = 8 * kMiB;
        model.nvramBytes =
            row.clientNvram ? row.clientNvram : kBlockSize;
        const auto result =
            core::runEndToEnd(ops, model, row.serverBuffer);
        const double segs =
            static_cast<double>(result.server.log.segmentsWritten);
        table.addRow(
            {row.name,
             util::format("%.1f",
                          toMiB(result.client.totalServerWrites())),
             util::format("%llu", static_cast<unsigned long long>(
                                      result.server.fsyncs)),
             util::format("%llu", static_cast<unsigned long long>(
                                      result.server.diskWrites())),
             bench::pct(util::percent(
                 static_cast<double>(
                     result.server.log.partialSegments),
                 segs)),
             util::format("%.1f",
                          toMiB(result.server.log.diskBytes()))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "client NVRAM absorbs fsyncs and ~40%% of the bytes before "
        "they cross the wire,\nhalving disk accesses; the server "
        "buffer then only helps the volatile clients\n(their fsyncs "
        "coalesce).  The remaining partials are light-load timeout "
        "flushes,\nwhich the paper notes do not impact disk "
        "bandwidth.\n");
    return 0;
}
