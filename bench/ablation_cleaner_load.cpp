/**
 * @file
 * Section 3's disk-space/garbage-collection claim: partial segments
 * waste up to a third of their space on metadata and summary blocks,
 * "the lost disk space is not reclaimed until LFS's garbage collector
 * runs ... Using NVRAM would eliminate partial segment writes and
 * would therefore reduce the disk space overhead to ... less than 1%
 * ... This would improve disk utilization by 5 - 33% and reduce
 * garbage collection load on the server CPU."
 *
 * Runs the server workload on a *bounded* disk so the cleaner must
 * work, with and without the write buffer, and reports overhead and
 * cleaner load.
 */

#include "bench_util.hpp"

using namespace nvfs;

namespace {

core::ServerRunResult
runBounded(double scale, Bytes buffer)
{
    const auto profiles = workload::standardFsProfiles(scale);
    const auto ops = workload::generateServerOps(
        profiles, 24 * kUsPerHour, 7);
    std::vector<std::string> names;
    for (const auto &profile : profiles)
        names.push_back(profile.name);

    server::ServerConfig config;
    config.nvramBufferBytes = buffer;
    // A bounded disk per file system: big enough for the live data
    // (/user6's database grows all day) but small enough that dead
    // partial segments must be reclaimed.
    config.lfs.diskSegments = 1400; // 700 MB at 512 KB segments
    config.lfs.cleanLowWater = 150;
    config.lfs.cleanHighWater = 300;

    server::FileServer fs(names, config);
    fs.run(ops);

    core::ServerRunResult result;
    for (FsId i = 0; i < names.size(); ++i)
        result.fs.push_back(fs.stats(i));
    result.totalDiskWrites = fs.totalDiskWrites();
    result.totalDataBytes = fs.totalDataBytes();
    return result;
}

} // namespace

int
main()
{
    bench::header(
        "garbage-collection load and disk-space overhead, bounded "
        "disk",
        "eliminating partial segments cuts metadata overhead from up "
        "to ~1/3 to < 1% and reduces cleaner load");

    const double scale = core::benchScale();
    const auto baseline = runBounded(scale, 0);
    const auto buffered = runBounded(scale, 512 * kKiB);

    util::TextTable table({"file system", "overhead % (base)",
                           "overhead % (buffered)",
                           "cleaner segs (base)",
                           "cleaner segs (buffered)",
                           "cleaner MB copied (base)",
                           "(buffered)"});
    for (std::size_t i = 0; i < baseline.fs.size(); ++i) {
        const auto &base = baseline.fs[i].log;
        const auto &buf = buffered.fs[i].log;
        auto overhead = [](const lfs::LogStats &stats) {
            return util::percent(
                static_cast<double>(stats.metadataBytes +
                                    stats.summaryBytes),
                static_cast<double>(stats.diskBytes()));
        };
        table.addRow(
            {baseline.fs[i].name, bench::pct(overhead(base)),
             bench::pct(overhead(buf)),
             util::format("%llu", static_cast<unsigned long long>(
                                      base.cleanerSegments)),
             util::format("%llu", static_cast<unsigned long long>(
                                      buf.cleanerSegments)),
             util::format("%.1f", toMiB(base.cleanerCopiedBytes)),
             util::format("%.1f", toMiB(buf.cleanerCopiedBytes))});
    }
    std::printf("%s\n", table.render().c_str());

    Bytes base_meta = 0, base_disk = 0, buf_meta = 0, buf_disk = 0;
    std::uint64_t base_clean = 0, buf_clean = 0;
    for (std::size_t i = 0; i < baseline.fs.size(); ++i) {
        base_meta += baseline.fs[i].log.metadataBytes +
                     baseline.fs[i].log.summaryBytes;
        base_disk += baseline.fs[i].log.diskBytes();
        base_clean += baseline.fs[i].log.cleanerSegments;
        buf_meta += buffered.fs[i].log.metadataBytes +
                    buffered.fs[i].log.summaryBytes;
        buf_disk += buffered.fs[i].log.diskBytes();
        buf_clean += buffered.fs[i].log.cleanerSegments;
    }
    std::printf("server-wide: overhead %.1f%% -> %.1f%% of disk "
                "bytes; cleaner segment writes %llu -> %llu\n",
                util::percent(static_cast<double>(base_meta),
                              static_cast<double>(base_disk)),
                util::percent(static_cast<double>(buf_meta),
                              static_cast<double>(buf_disk)),
                static_cast<unsigned long long>(base_clean),
                static_cast<unsigned long long>(buf_clean));
    return 0;
}
