/**
 * @file
 * Figure 2: byte lifetimes.  Net write traffic (% of bytes written to
 * client caches that eventually reach the server) when dirty bytes are
 * flushed after a fixed write-back delay, from a cache of infinite
 * size.  One series per trace, delay on a log axis.
 */

#include <cmath>

#include "bench_util.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Figure 2: byte lifetimes (net write traffic vs. write-back "
        "delay, infinite cache)",
        "for typical traces 35-50% of bytes die within 30 s, ~60% "
        "within a few hours; traces 3/4: 5-10% within 30 s, >80% "
        "within half an hour");

    const double scale = core::benchScale();
    const double delays_min[] = {0.01, 0.03, 0.1, 0.3, 0.5, 1, 3,
                                 10, 30, 60, 180, 600, 1440, 10000};

    std::vector<std::string> headers = {"delay (min)"};
    for (int t = 1; t <= 8; ++t)
        headers.push_back("trace " + std::to_string(t));
    util::TextTable table(std::move(headers));

    for (const double d : delays_min) {
        std::vector<std::string> row = {util::format("%g", d)};
        for (int t = 1; t <= 8; ++t) {
            const auto &life = core::standardLifetimes(t, scale);
            const auto delay = static_cast<TimeUs>(d * kUsPerMinute);
            row.push_back(bench::pct(life.netWriteTrafficPct(delay)));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render("net write traffic (%)").c_str());

    std::printf("checkpoints: at 30 s typical traces should read "
                "50-65%%, traces 3 and 4 should read 90-95%%;\n"
                "at 30 min traces 3 and 4 should have dropped below "
                "20%%.\n");
    return 0;
}
