/**
 * @file
 * Table 3: percent of forced partial segments on the eight LFS file
 * systems of the Sprite server, without an NVRAM write buffer.
 */

#include "bench_util.hpp"

using namespace nvfs;

namespace {

/** Published Table 3 values, same order as standardFsProfiles(). */
struct PaperRow
{
    double partialPct;
    double fsyncPct;
    double sharePct;
};

constexpr PaperRow kPaper[] = {
    {97, 92, 89.0}, // /user6
    {65, 0.01, 3.0}, // /local
    {70, 0, 3.0},    // /swap1
    {90, 18, 1.9},   // /user1
    {92, 10, 1.5},   // /user4
    {71, 22, 0.9},   // /sprite/src/kernel
    {92, 20, 0.3},   // /user2
    {96, 0, 0.1},    // /scratch4
};

} // namespace

int
main()
{
    bench::header(
        "Table 3: percent of forced partial segments on LFS file "
        "systems",
        "10-25% of segments are fsync-forced partials on most file "
        "systems; 92% on /user6");

    const double scale = core::benchScale();
    const auto result = core::runServerSim(24 * kUsPerHour, scale, 0);

    std::uint64_t total_segments = 0;
    for (const auto &fs : result.fs)
        total_segments += fs.log.segmentsWritten;

    util::TextTable table({"File system", "% partial", "paper",
                           "% partial by fsync", "paper",
                           "% of all segments", "paper"});
    for (std::size_t i = 0; i < result.fs.size(); ++i) {
        const auto &fs = result.fs[i];
        const double segs =
            static_cast<double>(fs.log.segmentsWritten);
        table.addRow({fs.name,
                      bench::pct(util::percent(
                          static_cast<double>(fs.log.partialSegments),
                          segs)),
                      bench::pct(kPaper[i].partialPct),
                      bench::pct(util::percent(
                          static_cast<double>(fs.log.partialsByFsync),
                          segs)),
                      bench::pct(kPaper[i].fsyncPct),
                      bench::pct(util::percent(
                          segs, static_cast<double>(total_segments))),
                      bench::pct(kPaper[i].sharePct)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("total segment writes: %llu\n",
                static_cast<unsigned long long>(total_segments));
    return 0;
}
