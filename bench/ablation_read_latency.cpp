/**
 * @file
 * The [3] cross-check closing Section 3: large segment writes delay
 * synchronous reads that queue behind them.  Sweep the write size at
 * constant write byte-throughput and report the mean read response
 * time — the paper quotes an increase of "typically about 14%"
 * (sometimes 37%) for full-segment writes, with the latency-optimal
 * write size around two disk tracks (50-70 KB).
 */

#include "bench_util.hpp"
#include "disk/queue_sim.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "read response time vs. LFS write size ([3] cross-check)",
        "full 512 KB segments raise mean read response ~14% "
        "(sometimes 37%) over ~2-track writes");

    disk::QueueSimParams params;
    params.readsPerSecond = 6.0;
    params.writeBytesPerSecond = 60.0 * 1024;
    params.durationSeconds = 4.0 * 3600.0;

    // Baseline for the "increase" comparison: ~2 disk tracks.
    const Bytes two_tracks = 2 * params.disk.trackBytes;
    params.writeBytes = two_tracks;
    const auto baseline = disk::simulateDiskQueue(params);

    util::TextTable table({"write size", "mean read response (ms)",
                           "vs. 2-track baseline %",
                           "mean write response (ms)", "disk util %"});
    for (const Bytes size :
         {Bytes{16 * kKiB}, Bytes{32 * kKiB}, two_tracks,
          Bytes{128 * kKiB}, Bytes{256 * kKiB}, Bytes{512 * kKiB},
          Bytes{kMiB}}) {
        params.writeBytes = size;
        const auto run = disk::simulateDiskQueue(params);
        table.addRow(
            {util::formatBytes(size),
             util::format("%.2f", run.meanReadResponseMs),
             util::format("%+.1f",
                          100.0 *
                              (run.meanReadResponseMs -
                               baseline.meanReadResponseMs) /
                              baseline.meanReadResponseMs),
             util::format("%.2f", run.meanWriteResponseMs),
             util::format("%.1f", 100.0 * run.diskUtilization)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("the effect matters only for reads that miss the "
                "server cache; an NVRAM write\nbuffer lets LFS choose "
                "its write size freely instead of being forced by "
                "fsyncs.\n");
    return 0;
}
