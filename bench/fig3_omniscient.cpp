/**
 * @file
 * Figure 3: net file write traffic under an omniscient NVRAM
 * replacement policy (evict the block with the next-modify time
 * furthest in the future), for each trace and a sweep of NVRAM sizes.
 * Unified model, 8 MB volatile cache.  An LRU baseline table gives
 * the realistic-policy reference the omniscient numbers beat; the
 * LRU sweep runs through the single-pass curve engine (one replay
 * per trace for all ten sizes).
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Figure 3: omniscient replacement policy (net write traffic "
        "vs. NVRAM size)",
        "1/8 MB of NVRAM eliminates 30-50% of server write traffic "
        "for most traces; ~50% at 1 MB with rapidly diminishing "
        "returns beyond");

    const double scale = core::benchScale();

    std::vector<std::string> headers = {"NVRAM (MB)"};
    for (int t = 1; t <= 8; ++t)
        headers.push_back("trace " + std::to_string(t));
    util::TextTable table(std::move(headers));

    // Warm the per-trace memoized caches serially, then fan the whole
    // (size x trace) grid out across the workers.  The omniscient
    // policy breaks the inclusion property, so this sweep stays on
    // the per-size grid.
    for (int t = 1; t <= 8; ++t) {
        core::standardOps(t, scale);
        core::standardOracle(t, scale);
    }
    std::vector<std::function<core::Metrics()>> tasks;
    for (const double mb : bench::kNvramSizeGrid) {
        for (int t = 1; t <= 8; ++t) {
            tasks.push_back([t, mb, scale] {
                const auto &ops = core::standardOps(t, scale);
                core::ModelConfig model;
                model.kind = core::ModelKind::Unified;
                model.volatileBytes = 8 * kMiB;
                model.nvramBytes = static_cast<Bytes>(mb * kMiB);
                model.nvramPolicy = cache::PolicyKind::Omniscient;
                model.oracle = &core::standardOracle(t, scale);
                return core::runClientSim(ops, model);
            });
        }
    }
    const core::SweepRunner runner;
    const auto results = runner.map(tasks);

    std::size_t next = 0;
    for (const double mb : bench::kNvramSizeGrid) {
        std::vector<std::string> row = {util::format("%g", mb)};
        for (int t = 1; t <= 8; ++t)
            row.push_back(
                bench::pct(results[next++].netWriteTrafficPct()));
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render("net write traffic (%)").c_str());

    // LRU baseline: the same sweep under the realistic policy, one
    // single-pass curve replay per trace.
    std::vector<std::string> lru_headers = {"NVRAM (MB)"};
    for (int t = 1; t <= 8; ++t)
        lru_headers.push_back("trace " + std::to_string(t));
    util::TextTable lru_table(std::move(lru_headers));

    std::vector<std::vector<core::Metrics>> lru_rows;
    for (int t = 1; t <= 8; ++t) {
        core::CurveSpec spec;
        spec.base.kind = core::ModelKind::Unified;
        spec.base.volatileBytes = 8 * kMiB;
        spec.axis = core::CurveAxis::NvramBytes;
        spec.sizes = bench::nvramSizeGridBytes();
        lru_rows.push_back(
            runner.runCurveSweep(core::standardOps(t, scale), spec));
    }
    for (std::size_t s = 0; s < std::size(bench::kNvramSizeGrid);
         ++s) {
        std::vector<std::string> row = {
            util::format("%g", bench::kNvramSizeGrid[s])};
        for (int t = 1; t <= 8; ++t)
            row.push_back(
                bench::pct(lru_rows[t - 1][s].netWriteTrafficPct()));
        lru_table.addRow(std::move(row));
    }
    std::printf("%s\n",
                lru_table.render("LRU baseline (net write traffic %)")
                    .c_str());
    return 0;
}
