/**
 * @file
 * Section 3 context: the NFS + UNIX-FFS baseline and the Prestoserve
 * NVRAM board [15], versus LFS with and without the write buffer.
 *
 * The paper: "performance improvements of up to 50% have been reported
 * on systems using this board ... While we do not see as great an
 * improvement in performance due to NVRAM with this write-optimized
 * file system [LFS] as with the NFS protocol and the UNIX fast file
 * system, we do see some improvement."
 */

#include "bench_util.hpp"
#include "ffs/ffs_server.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "NFS + FFS vs. LFS, with and without NVRAM",
        "NVRAM helps the synchronous NFS/FFS world most (up to ~50%); "
        "write-optimized LFS still gains, but less");

    const double scale = core::benchScale();
    const TimeUs duration = 24 * kUsPerHour;
    const auto profiles = workload::standardFsProfiles(scale);
    const auto ops = workload::generateServerOps(profiles, duration, 7);

    auto run_ffs = [&](bool nfs, Bytes nvram) {
        ffs::FfsConfig config;
        config.nfsProtocol = nfs;
        config.nvramBytes = nvram;
        ffs::FfsServer server(config);
        server.run(ops);
        return server.stats();
    };

    const auto nfs_plain = run_ffs(true, 0);
    const auto nfs_presto = run_ffs(true, kMiB);
    const auto ffs_plain = run_ffs(false, 0);
    const auto ffs_presto = run_ffs(false, kMiB);

    util::TextTable table({"system", "disk writes", "disk time (s)",
                           "sync ops", "mean sync latency (ms)"});
    auto addRow = [&](const std::string &name,
                      const ffs::FfsStats &stats) {
        table.addRow({name,
                      util::format("%llu",
                                   static_cast<unsigned long long>(
                                       stats.diskWrites)),
                      util::format("%.1f", stats.diskTimeMs / 1000.0),
                      util::format("%llu",
                                   static_cast<unsigned long long>(
                                       stats.syncOperations)),
                      util::format("%.2f",
                                   stats.meanSyncLatencyMs())});
    };
    addRow("NFS + FFS", nfs_plain);
    addRow("NFS + FFS + Prestoserve (1 MB)", nfs_presto);
    addRow("local FFS (30 s write-back)", ffs_plain);
    addRow("local FFS + Prestoserve", ffs_presto);
    std::printf("%s\n", table.render().c_str());

    std::printf("NFS latency improvement with Prestoserve: %.1f%% "
                "(paper: up to ~50%% system-level)\n",
                100.0 * (nfs_plain.meanSyncLatencyMs() -
                         nfs_presto.meanSyncLatencyMs()) /
                    nfs_plain.meanSyncLatencyMs());
    std::printf("NFS disk-time reduction with Prestoserve: %.1f%%\n",
                100.0 * (nfs_plain.diskTimeMs - nfs_presto.diskTimeMs) /
                    nfs_plain.diskTimeMs);

    // The LFS comparison from the main study.
    const auto lfs_base = core::runServerSim(duration, scale, 0, 7);
    const auto lfs_buf =
        core::runServerSim(duration, scale, 512 * kKiB, 7);
    std::printf("\nLFS (all 8 file systems): %llu -> %llu disk write "
                "accesses with a 1/2 MB buffer (%.1f%% fewer)\n",
                static_cast<unsigned long long>(
                    lfs_base.totalDiskWrites),
                static_cast<unsigned long long>(
                    lfs_buf.totalDiskWrites),
                100.0 *
                    (static_cast<double>(lfs_base.totalDiskWrites) -
                     static_cast<double>(lfs_buf.totalDiskWrites)) /
                    static_cast<double>(lfs_base.totalDiskWrites));
    std::printf("note LFS needs far fewer disk writes than NFS+FFS "
                "to begin with:\nthe log amortizes seeks that FFS "
                "pays per block.\n");
    return 0;
}
