/**
 * @file
 * Section 2.3 extension: "Reducing write traffic beyond 10 to 17%
 * would require choosing a cache consistency policy more efficient
 * than Sprite's, such as a protocol based on block-by-block
 * invalidation and flushing, rather than whole-file invalidation and
 * flushing [21]."
 *
 * This ablation implements that protocol: when another client opens a
 * dirty file, only the blocks it actually reads are recalled, instead
 * of the whole dirty set.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "consistency-protocol ablation: whole-file vs. block-level "
        "callbacks",
        "block-level invalidation should cut the callback share of "
        "write traffic (the 10-17% floor of Table 2)");

    const double scale = core::benchScale();

    util::TextTable table({"trace", "net write % (whole-file)",
                           "net write % (block-level)",
                           "callback MB (whole-file)",
                           "callback MB (block-level)"});
    // One task per (trace, protocol) pair; warm the trace cache
    // serially so worker time is all simulation.
    std::vector<std::function<core::Metrics()>> tasks;
    for (int t = 1; t <= 8; ++t) {
        core::standardOps(t, scale);
        for (const bool block_level : {false, true}) {
            tasks.push_back([t, scale, block_level] {
                const auto &ops = core::standardOps(t, scale);
                core::ClusterConfig config;
                config.model.kind = core::ModelKind::Unified;
                config.model.volatileBytes = 8 * kMiB;
                config.model.nvramBytes = kMiB;
                config.blockLevelCallbacks = block_level;
                core::ClusterSim sim(config,
                                     std::max<std::uint32_t>(
                                         1, ops.clientCount));
                return sim.run(ops);
            });
        }
    }
    const core::SweepRunner runner;
    const auto results = runner.map(tasks);

    std::size_t next = 0;
    for (int t = 1; t <= 8; ++t) {
        const auto &whole_metrics = results[next++];
        const auto &block_metrics = results[next++];

        table.addRow(
            {util::format("%d", t),
             bench::pct(whole_metrics.netWriteTrafficPct()),
             bench::pct(block_metrics.netWriteTrafficPct()),
             util::format("%.1f",
                          toMiB(whole_metrics.serverWrites(
                              core::WriteCause::Callback))),
             util::format("%.1f",
                          toMiB(block_metrics.serverWrites(
                              core::WriteCause::Callback)))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("block-level callbacks defer flushes until data is "
                "actually read; bytes the\nreader never touches can "
                "still die in the writer's NVRAM.\n");
    return 0;
}
