/**
 * @file
 * Section 2.3 extension: "Reducing write traffic beyond 10 to 17%
 * would require choosing a cache consistency policy more efficient
 * than Sprite's, such as a protocol based on block-by-block
 * invalidation and flushing, rather than whole-file invalidation and
 * flushing [21]."
 *
 * This ablation implements that protocol: when another client opens a
 * dirty file, only the blocks it actually reads are recalled, instead
 * of the whole dirty set.
 */

#include "bench_util.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "consistency-protocol ablation: whole-file vs. block-level "
        "callbacks",
        "block-level invalidation should cut the callback share of "
        "write traffic (the 10-17% floor of Table 2)");

    const double scale = core::benchScale();

    util::TextTable table({"trace", "net write % (whole-file)",
                           "net write % (block-level)",
                           "callback MB (whole-file)",
                           "callback MB (block-level)"});
    for (int t = 1; t <= 8; ++t) {
        const auto &ops = core::standardOps(t, scale);
        core::ClusterConfig config;
        config.model.kind = core::ModelKind::Unified;
        config.model.volatileBytes = 8 * kMiB;
        config.model.nvramBytes = kMiB;

        core::ClusterSim whole(config,
                               std::max<std::uint32_t>(
                                   1, ops.clientCount));
        const auto whole_metrics = whole.run(ops);

        config.blockLevelCallbacks = true;
        core::ClusterSim block(config,
                               std::max<std::uint32_t>(
                                   1, ops.clientCount));
        const auto block_metrics = block.run(ops);

        table.addRow(
            {util::format("%d", t),
             bench::pct(whole_metrics.netWriteTrafficPct()),
             bench::pct(block_metrics.netWriteTrafficPct()),
             util::format("%.1f",
                          toMiB(whole_metrics.serverWrites(
                              core::WriteCause::Callback))),
             util::format("%.1f",
                          toMiB(block_metrics.serverWrites(
                              core::WriteCause::Callback)))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("block-level callbacks defer flushes until data is "
                "actually read; bytes the\nreader never touches can "
                "still die in the writer's NVRAM.\n");
    return 0;
}
