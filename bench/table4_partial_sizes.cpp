/**
 * @file
 * Table 4: kilobytes of file data written per partial segment, per
 * fsync-forced partial, and each file system's share of the total
 * write traffic — plus the paper's disk-space-overhead estimate
 * (metadata + summary blocks as a fraction of partial segments).
 */

#include "bench_util.hpp"

using namespace nvfs;

namespace {

/** Published Table 4 values (KB/fsync-partial, KB/partial, % total). */
struct PaperRow
{
    double kbFsync;   ///< < 0 = not applicable (no fsyncs)
    double kbPartial;
    double totalPct;
};

constexpr PaperRow kPaper[] = {
    {7.9, 6.6, 49.3},   // /user6
    {45.0, 113.0, 20.4}, // /local
    {-1.0, 53.0, 19.0},  // /swap1
    {20.3, 14.9, 3.4},   // /user1
    {18.7, 23.4, 2.2},   // /user4
    {55.0, 21.3, 5.0},   // /sprite/src/kernel
    {-1.0, -1.0, 0.3},   // /user2 (not reported)
    {-1.0, -1.0, 0.1},   // /scratch4 (not reported)
};

std::string
kb(double bytes)
{
    return util::format("%.1f", bytes / 1024.0);
}

std::string
paperKb(double value)
{
    return value < 0 ? "n/a" : util::format("%.1f", value);
}

} // namespace

int
main()
{
    bench::header(
        "Table 4: average file data per partial segment and share of "
        "write traffic",
        "partial segments average 8 KB (/user6) to 55 KB "
        "(/sprite/src/kernel); /user6 carries ~49% of write traffic");

    const double scale = core::benchScale();
    const auto result = core::runServerSim(24 * kUsPerHour, scale, 0);

    util::TextTable table({"File system", "KB/fsync partial", "paper",
                           "KB/partial", "paper", "% total write",
                           "paper", "overhead %"});
    for (std::size_t i = 0; i < result.fs.size(); ++i) {
        const auto &fs = result.fs[i];
        const auto &log = fs.log;
        const double kb_fsync =
            log.partialsByFsync
                ? static_cast<double>(log.fsyncDataBytes) /
                      static_cast<double>(log.partialsByFsync)
                : -1.0;
        const double kb_partial =
            log.partialSegments
                ? static_cast<double>(log.partialDataBytes) /
                      static_cast<double>(log.partialSegments)
                : -1.0;
        // Disk space lost to metadata + summary, as a fraction of all
        // bytes this file system wrote to disk.
        const double overhead = util::percent(
            static_cast<double>(log.metadataBytes + log.summaryBytes),
            static_cast<double>(log.diskBytes()));
        table.addRow({fs.name,
                      kb_fsync < 0 ? "n/a" : kb(kb_fsync),
                      paperKb(kPaper[i].kbFsync),
                      kb_partial < 0 ? "n/a" : kb(kb_partial),
                      paperKb(kPaper[i].kbPartial),
                      bench::pct(util::percent(
                          static_cast<double>(log.dataBytes),
                          static_cast<double>(result.totalDataBytes))),
                      bench::pct(kPaper[i].totalPct),
                      bench::pct(overhead)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: metadata overhead approaches one third of each "
                "partial segment on /user6\nand ~8%% on "
                "/sprite/src/kernel; full segments cost < 1%%.\n");
    return 0;
}
