/**
 * @file
 * Section 3 headline: a one-half megabyte NVRAM write buffer per file
 * system reduces disk write accesses by ~10-25% on most file systems
 * and by ~90% on the transaction-heavy /user6.  Also sweeps the
 * buffer size (64 KB - 4 MB) as an ablation beyond the paper's fixed
 * half-megabyte.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "NVRAM write buffer: reduction in disk write accesses",
        "1/2 MB buffer: ~20% fewer disk accesses on most LFS file "
        "systems, ~90% on /user6");

    const double scale = core::benchScale();
    const TimeUs duration = 24 * kUsPerHour;

    // The whole study — baseline plus every ablation buffer size —
    // is one parallel server sweep.
    const Bytes sweep_sizes[] = {64 * kKiB,  128 * kKiB, 256 * kKiB,
                                 512 * kKiB, kMiB,       2 * kMiB,
                                 4 * kMiB};
    std::vector<core::ServerSweepConfig> configs;
    configs.push_back({duration, scale, 0});
    for (const Bytes size : sweep_sizes)
        configs.push_back({duration, scale, size});
    const core::SweepRunner runner;
    const auto runs = runner.runServerSweep(configs);

    const auto &baseline = runs[0];
    const auto &buffered = runs[4]; // the 512 KiB run

    util::TextTable table({"File system", "disk writes (no NVRAM)",
                           "disk writes (1/2 MB)", "reduction %",
                           "fsyncs absorbed %"});
    for (std::size_t i = 0; i < baseline.fs.size(); ++i) {
        const auto &base = baseline.fs[i];
        const auto &buf = buffered.fs[i];
        const double reduction = util::percent(
            static_cast<double>(base.diskWrites()) -
                static_cast<double>(buf.diskWrites()),
            static_cast<double>(base.diskWrites()));
        const double absorbed = util::percent(
            static_cast<double>(buf.fsyncsAbsorbed),
            static_cast<double>(buf.fsyncs));
        table.addRow({base.name,
                      util::format("%llu",
                                   static_cast<unsigned long long>(
                                       base.diskWrites())),
                      util::format("%llu",
                                   static_cast<unsigned long long>(
                                       buf.diskWrites())),
                      bench::pct(reduction),
                      buf.fsyncs ? bench::pct(absorbed)
                                 : std::string("n/a")});
    }
    std::printf("%s\n", table.render().c_str());

    // Ablation: buffer size sweep (server-wide totals).
    std::printf("ablation: buffer size sweep (total disk write "
                "accesses across all file systems)\n");
    util::TextTable sweep({"buffer", "disk writes", "reduction %"});
    sweep.addRow({"none",
                  util::format("%llu",
                               static_cast<unsigned long long>(
                                   baseline.totalDiskWrites)),
                  "0.0"});
    for (std::size_t i = 0; i < std::size(sweep_sizes); ++i) {
        const Bytes size = sweep_sizes[i];
        const auto &run = runs[i + 1];
        sweep.addRow({util::formatBytes(size),
                      util::format("%llu",
                                   static_cast<unsigned long long>(
                                       run.totalDiskWrites)),
                      bench::pct(util::percent(
                          static_cast<double>(
                              baseline.totalDiskWrites) -
                              static_cast<double>(run.totalDiskWrites),
                          static_cast<double>(
                              baseline.totalDiskWrites)))});
    }
    std::printf("%s\n", sweep.render().c_str());
    return 0;
}
