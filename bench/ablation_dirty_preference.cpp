/**
 * @file
 * Section 2.1 ablation: the paper's volatile model deliberately drops
 * Sprite's preference for keeping dirty blocks ("Giving dirty blocks
 * preference helps reduce write traffic, but at the expense of
 * increasing read traffic").  This bench quantifies that trade-off by
 * running the volatile model both ways.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "volatile-model ablation: dirty-block preference in "
        "replacement",
        "preferring dirty blocks trades read traffic for write "
        "traffic (the simplification the paper's model makes)");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);

    // With Sprite's 30-second write-back, dirty blocks are cleaned
    // long before they drift to the LRU tail, so the preference is
    // inert — which is why the paper could drop it.  It only starts
    // to matter as dirty data is allowed to live longer (exactly the
    // regime NVRAM enables), so sweep the write-back age.
    util::TextTable table({"write-back age", "cache MB",
                           "write % (plain)", "write % (pref)",
                           "read MB (plain)", "read MB (pref)",
                           "total % (plain)", "total % (pref)"});
    const double ages_s[] = {30.0, 300.0, 1800.0};
    const double sizes_mb[] = {1.0, 4.0};
    std::vector<core::ModelConfig> models;
    for (const double age_s : ages_s) {
        for (const double mb : sizes_mb) {
            core::ModelConfig model;
            model.kind = core::ModelKind::Volatile;
            model.volatileBytes = static_cast<Bytes>(mb * kMiB);
            model.writeBackAge = secondsUs(age_s);
            models.push_back(model);
            model.dirtyPreference = true;
            models.push_back(model);
        }
    }
    const core::SweepRunner runner;
    const auto results = runner.runClientSweep(ops, models);

    std::size_t next = 0;
    for (const double age_s : ages_s) {
        for (const double mb : sizes_mb) {
            const auto &plain = results[next++];
            const auto &pref = results[next++];

            table.addRow(
                {util::formatDuration(secondsUs(age_s)),
                 util::format("%g", mb),
                 bench::pct(plain.netWriteTrafficPct()),
                 bench::pct(pref.netWriteTrafficPct()),
                 util::format("%.1f", toMiB(plain.serverReadBytes)),
                 util::format("%.1f", toMiB(pref.serverReadBytes)),
                 bench::pct(plain.netTotalTrafficPct()),
                 bench::pct(pref.netTotalTrafficPct())});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("at 30 s the columns match (the paper's "
                "simplification is harmless); with longer\ndelays "
                "the preference buys write traffic at the cost of "
                "extra read misses.\n");
    return 0;
}
