/**
 * @file
 * Section 3 cross-check of Solworth & Orji [20]: writing dirty blocks
 * randomly to disk uses only ~7% of disk bandwidth; buffering 1000
 * I/Os (about four megabytes) and sorting them raises utilization to
 * ~40%.  Also shows the LFS contrast: one 512 KB segment write per
 * seek approaches media bandwidth.
 */

#include "bench_util.hpp"
#include "disk/scheduler.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "[20] cross-check: disk bandwidth utilization of random vs. "
        "sorted buffered writes",
        "random 4 KB writes ~7% utilization; 1000 sorted buffered "
        "I/Os ~40%; full LFS segments approach media rate");

    const disk::DiskModel model;
    util::Rng rng(99);

    std::printf("unbuffered random 4 KB writes: %.1f%% utilization "
                "(paper cites ~7%%)\n\n",
                100.0 * disk::unbufferedUtilization(model, kBlockSize));

    util::TextTable table({"batch size", "FIFO util %",
                           "elevator util %", "speedup"});
    for (const std::size_t batch : {10u, 100u, 500u, 1000u, 4000u}) {
        std::vector<disk::DiskRequest> requests;
        requests.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i) {
            requests.push_back(
                {static_cast<std::uint32_t>(rng.uniformInt(
                     0, model.params().cylinders - 1)),
                 kBlockSize});
        }
        const auto fifo = disk::serviceBatch(model, requests,
                                             disk::Schedule::Fifo);
        const auto sorted = disk::serviceBatch(
            model, requests, disk::Schedule::Elevator);
        table.addRow({util::format("%zu", batch),
                      util::format("%.1f", 100.0 * fifo.utilization()),
                      util::format("%.1f",
                                   100.0 * sorted.utilization()),
                      util::format("%.2fx",
                                   fifo.totalMs() / sorted.totalMs())});
    }
    std::printf("%s\n", table.render().c_str());

    const auto segment = model.serviceSequential(512 * kKiB);
    std::printf("one full LFS segment write (512 KB, one seek): "
                "%.1f%% utilization\n",
                100.0 * segment.utilization());
    return 0;
}
