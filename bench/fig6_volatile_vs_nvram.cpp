/**
 * @file
 * Figure 6: benefits of additional memory.  Net total traffic for the
 * volatile and unified models starting from 8 MB and from 16 MB of
 * volatile cache, as memory is added (volatile memory for the
 * volatile model, NVRAM for the unified model) — the input to the
 * Section 2.7 cost-effectiveness argument.  All four series are
 * LRU-managed size sweeps, so each one is a single curve-engine
 * replay instead of seven independent simulations.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Figure 6: benefits of additional memory (Trace 7)",
        "on an 8 MB base, 2 MB of NVRAM ~= 4 MB of volatile memory; "
        "on a 16 MB base, 1/2 MB of NVRAM ~= 6 MB of volatile memory");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);
    const double extra_mb[] = {0, 0.5, 1, 2, 4, 6, 8};

    const core::SweepRunner runner;
    // Column-major: (volatile-8, unified-8, volatile-16, unified-16),
    // one curve sweep per series over the shared extra-memory axis.
    std::vector<std::vector<core::Metrics>> series;
    for (const Bytes base : {Bytes{8 * kMiB}, Bytes{16 * kMiB}}) {
        core::CurveSpec vol;
        vol.base.kind = core::ModelKind::Volatile;
        vol.axis = core::CurveAxis::VolatileBytes;
        for (const double extra : extra_mb)
            vol.sizes.push_back(base +
                                static_cast<Bytes>(extra * kMiB));
        series.push_back(runner.runCurveSweep(ops, vol));

        core::CurveSpec uni;
        uni.base.kind = core::ModelKind::Unified;
        uni.base.volatileBytes = base;
        uni.axis = core::CurveAxis::NvramBytes;
        for (const double extra : extra_mb)
            uni.sizes.push_back(
                extra == 0 ? kBlockSize
                           : static_cast<Bytes>(extra * kMiB));
        series.push_back(runner.runCurveSweep(ops, uni));
    }

    util::TextTable table({"extra MB", "volatile-8MB", "unified-8MB",
                           "volatile-16MB", "unified-16MB"});
    for (std::size_t row_index = 0;
         row_index < std::size(extra_mb); ++row_index) {
        std::vector<std::string> row = {
            util::format("%g", extra_mb[row_index])};
        for (const auto &column : series)
            row.push_back(
                bench::pct(column[row_index].netTotalTrafficPct()));
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render("net total traffic (%)").c_str());
    return 0;
}
