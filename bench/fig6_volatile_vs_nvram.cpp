/**
 * @file
 * Figure 6: benefits of additional memory.  Net total traffic for the
 * volatile and unified models starting from 8 MB and from 16 MB of
 * volatile cache, as memory is added (volatile memory for the
 * volatile model, NVRAM for the unified model) — the input to the
 * Section 2.7 cost-effectiveness argument.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Figure 6: benefits of additional memory (Trace 7)",
        "on an 8 MB base, 2 MB of NVRAM ~= 4 MB of volatile memory; "
        "on a 16 MB base, 1/2 MB of NVRAM ~= 6 MB of volatile memory");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);
    const double extra_mb[] = {0, 0.5, 1, 2, 4, 6, 8};

    // Row-major grid: (extra) x (volatile-8, unified-8, volatile-16,
    // unified-16), matching the table columns.
    std::vector<core::ModelConfig> models;
    for (const double extra : extra_mb) {
        for (const Bytes base : {Bytes{8 * kMiB}, Bytes{16 * kMiB}}) {
            core::ModelConfig vol;
            vol.kind = core::ModelKind::Volatile;
            vol.volatileBytes =
                base + static_cast<Bytes>(extra * kMiB);
            models.push_back(vol);

            core::ModelConfig uni;
            uni.kind = core::ModelKind::Unified;
            uni.volatileBytes = base;
            uni.nvramBytes = extra == 0
                                 ? kBlockSize
                                 : static_cast<Bytes>(extra * kMiB);
            models.push_back(uni);
        }
    }
    const core::SweepRunner runner;
    const auto results = runner.runClientSweep(ops, models);

    util::TextTable table({"extra MB", "volatile-8MB", "unified-8MB",
                           "volatile-16MB", "unified-16MB"});
    std::size_t next = 0;
    for (const double extra : extra_mb) {
        std::vector<std::string> row = {util::format("%g", extra)};
        for (int column = 0; column < 4; ++column)
            row.push_back(
                bench::pct(results[next++].netTotalTrafficPct()));
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render("net total traffic (%)").c_str());
    return 0;
}
