/**
 * @file
 * Figure 6: benefits of additional memory.  Net total traffic for the
 * volatile and unified models starting from 8 MB and from 16 MB of
 * volatile cache, as memory is added (volatile memory for the
 * volatile model, NVRAM for the unified model) — the input to the
 * Section 2.7 cost-effectiveness argument.
 */

#include "bench_util.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Figure 6: benefits of additional memory (Trace 7)",
        "on an 8 MB base, 2 MB of NVRAM ~= 4 MB of volatile memory; "
        "on a 16 MB base, 1/2 MB of NVRAM ~= 6 MB of volatile memory");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);
    const double extra_mb[] = {0, 0.5, 1, 2, 4, 6, 8};

    util::TextTable table({"extra MB", "volatile-8MB", "unified-8MB",
                           "volatile-16MB", "unified-16MB"});
    for (const double extra : extra_mb) {
        std::vector<std::string> row = {util::format("%g", extra)};
        for (const Bytes base : {Bytes{8 * kMiB}, Bytes{16 * kMiB}}) {
            core::ModelConfig vol;
            vol.kind = core::ModelKind::Volatile;
            vol.volatileBytes =
                base + static_cast<Bytes>(extra * kMiB);
            row.insert(row.begin() + (base == 8 * kMiB ? 1 : 3),
                       bench::pct(core::runClientSim(ops, vol)
                                      .netTotalTrafficPct()));

            core::ModelConfig uni;
            uni.kind = core::ModelKind::Unified;
            uni.volatileBytes = base;
            uni.nvramBytes = extra == 0
                                 ? kBlockSize
                                 : static_cast<Bytes>(extra * kMiB);
            row.insert(row.begin() + (base == 8 * kMiB ? 2 : 4),
                       bench::pct(core::runClientSim(ops, uni)
                                      .netTotalTrafficPct()));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render("net total traffic (%)").c_str());
    return 0;
}
