/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures.  Each bench binary prints the paper's
 * published values next to the measured ones so the shape comparison
 * is immediate.
 */

#pragma once

#include <cstdio>
#include <string>

#include "core/sim/experiments.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace nvfs::bench {

/** Print a standard header for a bench binary. */
inline void
header(const std::string &experiment, const std::string &paper_claim)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf("(shape comparison — absolute numbers depend on the "
                "synthetic traces)\n");
    std::printf("==============================================="
                "=================\n\n");
}

/** Format a percentage cell. */
inline std::string
pct(double value)
{
    return util::format("%.1f", value);
}

} // namespace nvfs::bench
