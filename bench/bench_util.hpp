/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures.  Each bench binary prints the paper's
 * published values next to the measured ones so the shape comparison
 * is immediate.
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/sim/experiments.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace nvfs::bench {

/**
 * The paper's NVRAM size sweep (Fig 3-4 x-axis), in MB.  Shared by
 * the figure benches and the curve-engine wiring so the single-pass
 * engine and the per-size grid provably sweep the same points.
 */
inline constexpr double kNvramSizeGrid[] = {0.03125, 0.0625, 0.125,
                                            0.25,    0.5,    1,
                                            2,       4,      8,
                                            16};

/** kNvramSizeGrid in bytes, as a CurveSpec/ModelConfig size list. */
inline std::vector<Bytes>
nvramSizeGridBytes()
{
    std::vector<Bytes> sizes;
    for (const double mb : kNvramSizeGrid)
        sizes.push_back(static_cast<Bytes>(mb * kMiB));
    return sizes;
}

/** Print a standard header for a bench binary. */
inline void
header(const std::string &experiment, const std::string &paper_claim)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf("(shape comparison — absolute numbers depend on the "
                "synthetic traces)\n");
    std::printf("==============================================="
                "=================\n\n");
}

/** Format a percentage cell. */
inline std::string
pct(double value)
{
    return util::format("%.1f", value);
}

} // namespace nvfs::bench
