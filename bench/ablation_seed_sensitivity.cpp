/**
 * @file
 * Robustness check no paper reproduction should skip: re-generate
 * Trace 7 with several independent seeds and re-run the headline
 * client experiments.  The published conclusions should hold for
 * every realization of the synthetic workload, not just the default
 * seed — this bench reports the across-seed spread of each headline
 * number.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"

using namespace nvfs;

namespace {

/** Everything one trace realization contributes to the spreads. */
struct SeedResult
{
    double absorbedPct = 0;
    core::Metrics volatileMetrics;
    core::Metrics unifiedMetrics;
};

} // namespace

int
main()
{
    bench::header(
        "seed sensitivity of the headline client results (Trace 7)",
        "conclusions must survive workload re-randomization: spreads "
        "should be a point or two, orderings never flip");

    const double scale = core::benchScale();
    const std::uint64_t seeds[] = {11, 222, 3333, 44444, 555555};

    util::Accumulator absorbed_pct;   // infinite-cache absorption
    util::Accumulator volatile_write; // volatile model net write %
    util::Accumulator unified_write;  // unified + 1 MB net write %
    util::Accumulator unified_total;  // unified + 1 MB net total %
    util::Accumulator volatile_total;
    bool ordering_held = true;

    // Each realization regenerates the trace and runs three analyses;
    // seeds are fully independent, so one parallel task per seed.
    std::vector<std::function<SeedResult()>> tasks;
    for (const std::uint64_t seed : seeds) {
        tasks.push_back([scale, seed] {
            const auto ops = core::opsWithSeed(7, scale, seed);
            const auto life = core::analyzeLifetimes(ops);

            SeedResult result;
            result.absorbedPct =
                100.0 * static_cast<double>(life.absorbedBytes()) /
                static_cast<double>(life.totalWritten);

            core::ModelConfig vol;
            vol.kind = core::ModelKind::Volatile;
            vol.volatileBytes = 8 * kMiB;
            result.volatileMetrics = core::runClientSim(ops, vol);

            core::ModelConfig uni = vol;
            uni.kind = core::ModelKind::Unified;
            uni.nvramBytes = kMiB;
            result.unifiedMetrics = core::runClientSim(ops, uni);
            return result;
        });
    }
    const core::SweepRunner runner;
    for (const SeedResult &result : runner.map(tasks)) {
        absorbed_pct.add(result.absorbedPct);
        const auto &vol_metrics = result.volatileMetrics;
        const auto &uni_metrics = result.unifiedMetrics;
        volatile_write.add(vol_metrics.netWriteTrafficPct());
        volatile_total.add(vol_metrics.netTotalTrafficPct());
        unified_write.add(uni_metrics.netWriteTrafficPct());
        unified_total.add(uni_metrics.netTotalTrafficPct());

        ordering_held &= uni_metrics.netWriteTrafficPct() <
                         vol_metrics.netWriteTrafficPct();
        ordering_held &= uni_metrics.netTotalTrafficPct() <
                         vol_metrics.netTotalTrafficPct();
    }

    util::TextTable table({"metric", "mean", "stddev", "min", "max"});
    auto addRow = [&](const std::string &name,
                      const util::Accumulator &acc) {
        table.addRow({name, util::format("%.1f", acc.mean()),
                      util::format("%.2f", acc.stddev()),
                      util::format("%.1f", acc.min()),
                      util::format("%.1f", acc.max())});
    };
    addRow("infinite-cache absorption %", absorbed_pct);
    addRow("volatile net write %", volatile_write);
    addRow("unified (1 MB) net write %", unified_write);
    addRow("volatile net total %", volatile_total);
    addRow("unified (1 MB) net total %", unified_total);
    std::printf("%s\n",
                table.render(util::format("%zu seeds",
                                          std::size(seeds)))
                    .c_str());
    std::printf("unified < volatile in every realization: %s\n",
                ordering_held ? "yes" : "NO — investigate!");
    return 0;
}
