/**
 * @file
 * Figure 5: effect of cache models on net *total* (read + write)
 * traffic, Trace 7.  Every model starts from an 8 MB volatile cache;
 * the X axis adds memory — volatile memory for the volatile model,
 * NVRAM for the write-aside and unified models.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Figure 5: effect of cache models on net total traffic "
        "(Trace 7, 8 MB base)",
        "with +4 MB the unified model is ~8% better than volatile and "
        "write-aside ~8% worse; at +8 MB the gaps are ~14%");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);
    const double extra_mb[] = {0, 0.5, 1, 2, 4, 6, 8};

    // Build the whole grid row-major, then fan it out.
    std::vector<core::ModelConfig> models;
    for (const double extra : extra_mb) {
        // Volatile model: extra volatile memory.
        core::ModelConfig vol;
        vol.kind = core::ModelKind::Volatile;
        vol.volatileBytes = static_cast<Bytes>((8 + extra) * kMiB);
        models.push_back(vol);

        // NVRAM models: extra NVRAM on top of the 8 MB base.  No
        // NVRAM at all degenerates to the volatile model without the
        // 30-second write-back; use the smallest representable NVRAM
        // (one block) for continuity.
        for (const auto kind :
             {core::ModelKind::WriteAside, core::ModelKind::Unified}) {
            core::ModelConfig model;
            model.kind = kind;
            model.volatileBytes = 8 * kMiB;
            model.nvramBytes = extra == 0
                                   ? kBlockSize
                                   : static_cast<Bytes>(extra * kMiB);
            models.push_back(model);
        }
    }
    const core::SweepRunner runner;
    const auto results = runner.runClientSweep(ops, models);

    util::TextTable table({"extra MB", "volatile", "write-aside",
                           "unified"});
    std::size_t next = 0;
    for (const double extra : extra_mb) {
        std::vector<std::string> row = {util::format("%g", extra)};
        for (int column = 0; column < 3; ++column)
            row.push_back(
                bench::pct(results[next++].netTotalTrafficPct()));
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render("net total traffic (%)").c_str());
    std::printf("expected ordering for larger additions: unified < "
                "volatile < write-aside\n(the unified model also "
                "caches clean blocks in NVRAM; write-aside only "
                "duplicates dirty ones).\n");
    return 0;
}
