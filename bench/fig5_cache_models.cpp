/**
 * @file
 * Figure 5: effect of cache models on net *total* (read + write)
 * traffic, Trace 7.  Every model starts from an 8 MB volatile cache;
 * the X axis adds memory — volatile memory for the volatile model,
 * NVRAM for the write-aside and unified models.
 */

#include "bench_util.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Figure 5: effect of cache models on net total traffic "
        "(Trace 7, 8 MB base)",
        "with +4 MB the unified model is ~8% better than volatile and "
        "write-aside ~8% worse; at +8 MB the gaps are ~14%");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);
    const double extra_mb[] = {0, 0.5, 1, 2, 4, 6, 8};

    util::TextTable table({"extra MB", "volatile", "write-aside",
                           "unified"});
    for (const double extra : extra_mb) {
        std::vector<std::string> row = {util::format("%g", extra)};

        // Volatile model: extra volatile memory.
        core::ModelConfig vol;
        vol.kind = core::ModelKind::Volatile;
        vol.volatileBytes = static_cast<Bytes>((8 + extra) * kMiB);
        row.push_back(
            bench::pct(core::runClientSim(ops, vol)
                           .netTotalTrafficPct()));

        // NVRAM models: extra NVRAM on top of the 8 MB base.
        for (const auto kind :
             {core::ModelKind::WriteAside, core::ModelKind::Unified}) {
            if (extra == 0) {
                // No NVRAM at all degenerates to the volatile model
                // without the 30-second write-back; use the smallest
                // representable NVRAM (one block) for continuity.
                core::ModelConfig model;
                model.kind = kind;
                model.volatileBytes = 8 * kMiB;
                model.nvramBytes = kBlockSize;
                row.push_back(bench::pct(
                    core::runClientSim(ops, model)
                        .netTotalTrafficPct()));
                continue;
            }
            core::ModelConfig model;
            model.kind = kind;
            model.volatileBytes = 8 * kMiB;
            model.nvramBytes = static_cast<Bytes>(extra * kMiB);
            row.push_back(bench::pct(
                core::runClientSim(ops, model).netTotalTrafficPct()));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render("net total traffic (%)").c_str());
    std::printf("expected ordering for larger additions: unified < "
                "volatile < write-aside\n(the unified model also "
                "caches clean blocks in NVRAM; write-aside only "
                "duplicates dirty ones).\n");
    return 0;
}
