/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * interval-set updates, block-cache operations, policy victim
 * selection, LFS block appends, and whole-trace simulation throughput.
 */

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include <unistd.h>

#include "bench_util.hpp"
#include "cache/block_cache.hpp"
#include "core/sim/experiments.hpp"
#include "core/sim/sweep.hpp"
#include "lfs/log.hpp"
#include "obs/export.hpp"
#include "prep/op_cache.hpp"
#include "trace/stream.hpp"
#include "util/flat_map.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace nvfs;

namespace {

void
BM_IntervalSetInsert(benchmark::State &state)
{
    util::Rng rng(1);
    for (auto _ : state) {
        util::IntervalSet set;
        for (int i = 0; i < state.range(0); ++i) {
            const Bytes begin = rng.uniformInt(0, 1 << 20);
            set.insert(begin, begin + 512);
        }
        benchmark::DoNotOptimize(set.totalBytes());
    }
}
BENCHMARK(BM_IntervalSetInsert)->Arg(64)->Arg(1024);

void
BM_BlockCacheChurn(benchmark::State &state)
{
    util::Rng rng(2);
    for (auto _ : state) {
        cache::BlockCache cache(1024);
        for (int i = 0; i < 8192; ++i) {
            const cache::BlockId id{
                static_cast<FileId>(rng.uniformInt(0, 255)),
                static_cast<std::uint32_t>(rng.uniformInt(0, 63))};
            if (cache.contains(id)) {
                cache.touch(id, i);
                continue;
            }
            if (cache.full()) {
                const auto victim = cache.chooseVictim(i);
                cache.remove(*victim);
            }
            cache.insert(id, i);
        }
        benchmark::DoNotOptimize(cache.size());
    }
}
BENCHMARK(BM_BlockCacheChurn);

void
BM_PolicyVictim(benchmark::State &state)
{
    const auto kind = static_cast<cache::PolicyKind>(state.range(0));
    util::Rng rng(3);
    cache::BlockCache cache(4096, cache::makePolicy(kind, &rng));
    for (std::uint32_t i = 0; i < 4096; ++i)
        cache.insert({static_cast<FileId>(i), 0}, i);
    TimeUs now = 4096;
    for (auto _ : state) {
        const auto victim = cache.chooseVictim(now);
        cache.remove(*victim);
        cache.insert(*victim, ++now);
    }
}
BENCHMARK(BM_PolicyVictim)
    ->Arg(static_cast<int>(cache::PolicyKind::Lru))
    ->Arg(static_cast<int>(cache::PolicyKind::Random))
    ->Arg(static_cast<int>(cache::PolicyKind::Clock));

void
BM_LfsAppend(benchmark::State &state)
{
    for (auto _ : state) {
        lfs::LfsLog log;
        for (std::uint32_t i = 0; i < 4096; ++i)
            log.writeBlock(i % 64, i / 64, kBlockSize);
        log.seal(lfs::SealCause::Shutdown);
        benchmark::DoNotOptimize(log.stats().segmentsWritten);
    }
}
BENCHMARK(BM_LfsAppend);

void
BM_ClientSimTrace7(benchmark::State &state)
{
    // Small-scale end-to-end simulation throughput (ops/second).
    const auto &ops = core::standardOps(7, 0.05);
    for (auto _ : state) {
        core::ModelConfig model;
        model.kind = core::ModelKind::Unified;
        model.volatileBytes = 8 * kMiB;
        model.nvramBytes = kMiB;
        const auto metrics = core::runClientSim(ops, model);
        benchmark::DoNotOptimize(metrics.appWriteBytes);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(ops.ops.size()));
}
BENCHMARK(BM_ClientSimTrace7);

void
BM_ClusterSimReplay(benchmark::State &state)
{
    // End-to-end replay macrobenchmark: one whole trace through the
    // cluster simulator per iteration, per model, with the engine as
    // the last argument (0 = legacy per-block, 1 = extent).  The
    // extent/legacy pairs feed BENCH_e2e.json's speedup table.
    const auto trace = static_cast<int>(state.range(0));
    const auto kind = static_cast<core::ModelKind>(state.range(1));
    const bool extent = state.range(2) != 0;
    const auto &ops = core::standardOps(trace, core::benchScale());
    for (auto _ : state) {
        core::ModelConfig model;
        model.kind = kind;
        model.volatileBytes = 8 * kMiB;
        model.nvramBytes = kMiB;
        model.extentOps = extent;
        const auto metrics = core::runClientSim(ops, model);
        benchmark::DoNotOptimize(metrics.appWriteBytes);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(ops.ops.size()));
}
BENCHMARK(BM_ClusterSimReplay)
    ->ArgNames({"trace", "model", "engine"})
    ->Args({3, 0, 0})->Args({3, 0, 1})
    ->Args({3, 1, 0})->Args({3, 1, 1})
    ->Args({3, 2, 0})->Args({3, 2, 1})
    ->Args({4, 0, 0})->Args({4, 0, 1})
    ->Args({4, 1, 0})->Args({4, 1, 1})
    ->Args({4, 2, 0})->Args({4, 2, 1})
    ->Args({7, 0, 0})->Args({7, 0, 1})
    ->Args({7, 1, 0})->Args({7, 1, 1})
    ->Args({7, 2, 0})->Args({7, 2, 1})
    ->Unit(benchmark::kMillisecond);

void
BM_FlatMapLookup(benchmark::State &state)
{
    // Mixed hit/miss point lookups against a loaded table — the
    // access pattern of the BlockCache index and ClusterSim maps.
    const auto n = static_cast<std::uint64_t>(state.range(0));
    util::FlatMap<std::uint64_t, std::uint64_t, util::SplitMix64Hash>
        map;
    map.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        map.insertOrAssign(i * 2, i); // even keys present, odd absent
    util::Rng rng(5);
    std::uint64_t sum = 0;
    for (auto _ : state) {
        const auto key = static_cast<std::uint64_t>(
            rng.uniformInt(0, static_cast<int>(2 * n - 1)));
        const std::uint64_t *found = map.find(key);
        sum += found == nullptr ? 1 : *found;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlatMapLookup)->Arg(1024)->Arg(65536);

void
BM_OpStreamReplay(benchmark::State &state)
{
    // Pure op-dispatch scan over the SoA columns, the shape of the
    // ClusterSim::run() main loop minus the model work.
    const auto &ops = core::standardOps(7, 0.05);
    const prep::OpColumns &col = ops.ops;
    for (auto _ : state) {
        Bytes read = 0;
        Bytes written = 0;
        std::uint64_t other = 0;
        for (std::size_t i = 0; i < col.size(); ++i) {
            switch (col.type[i]) {
              case prep::OpType::Read:
                read += col.length[i];
                break;
              case prep::OpType::Write:
                written += col.length[i];
                break;
              default:
                other += col.file[i];
                break;
            }
        }
        benchmark::DoNotOptimize(read + written + other);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(col.size()));
}
BENCHMARK(BM_OpStreamReplay);

void
BM_TraceCacheHit(benchmark::State &state)
{
    // Persistent-cache hit path: mmap + validate + column copy of a
    // real cache file, i.e. what standardOps() costs on a warm cache.
    const auto &ops = core::standardOps(7, 0.05);
    const std::uint64_t hash = 0x1234abcdu;
    const std::string path = "/tmp/nvfs_bench_ops_cache_" +
                             std::to_string(::getpid()) + ".nvfsops";
    if (!prep::storeCachedOps(path, ops, hash)) {
        state.SkipWithError("cannot write bench cache file");
        return;
    }
    for (auto _ : state) {
        auto loaded = prep::loadCachedOps(path, hash);
        benchmark::DoNotOptimize(loaded->ops.size());
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(ops.ops.size()));
}
BENCHMARK(BM_TraceCacheHit);

void
BM_SweepRunner(benchmark::State &state)
{
    // An 8-config unified-model grid fanned out over Arg(0) worker
    // threads; Arg(0)=1 is the serial baseline for the speedup.
    const auto &ops = core::standardOps(7, 0.05);
    std::vector<core::ModelConfig> models;
    for (const double mb : {0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 16.0}) {
        core::ModelConfig model;
        model.kind = core::ModelKind::Unified;
        model.volatileBytes = 8 * kMiB;
        model.nvramBytes = static_cast<Bytes>(mb * kMiB);
        models.push_back(model);
    }
    const core::SweepRunner runner(
        static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        const auto results = runner.runClientSweep(ops, models);
        benchmark::DoNotOptimize(results.front().appWriteBytes);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(models.size()));
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void
BM_ReplayGrid(benchmark::State &state)
{
    // The replay grid scheduler itself: both engines x all three
    // models on trace 4, fanned out at explicit width jobs (1 = the
    // serial model loop the grid is bit-identical to).  The jobs:N /
    // jobs:1 real-time ratio is the grid speedup in BENCH_e2e.json.
    const auto width = static_cast<unsigned>(state.range(0));
    const auto &ops = core::standardOps(4, 0.05);
    std::vector<core::ModelConfig> models;
    for (const bool extent : {false, true}) {
        for (const auto kind :
             {core::ModelKind::Volatile, core::ModelKind::WriteAside,
              core::ModelKind::Unified}) {
            core::ModelConfig model;
            model.kind = kind;
            model.volatileBytes = 8 * kMiB;
            model.nvramBytes = kMiB;
            model.extentOps = extent;
            models.push_back(model);
        }
    }
    for (auto _ : state) {
        const auto results =
            core::runClientGrid(ops, models, 42, width);
        benchmark::DoNotOptimize(results.front().appWriteBytes);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(models.size()));
}
BENCHMARK(BM_ReplayGrid)
    ->ArgName("jobs")
    ->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_CurveSweep(benchmark::State &state)
{
    // The multi-size sweep both ways: curve=1 is one single-pass
    // replay classifying every event against all sizes at once;
    // curve=0 is the per-size replay grid pinned to one worker.  The
    // grid:curve time ratio at equal (single-threaded) width is the
    // curve_speedups entry in BENCH_e2e.json.  axis=1 sweeps NVRAM
    // sizes under the unified model (the Fig 3-4 grid); axis=0 sweeps
    // volatile cache sizes (the Fig 6 volatile series).
    const bool nvram_axis = state.range(0) != 0;
    const bool curve = state.range(1) != 0;
    const auto &ops = core::standardOps(7, core::benchScale());
    core::CurveSpec spec;
    if (nvram_axis) {
        spec.base.kind = core::ModelKind::Unified;
        spec.base.volatileBytes = 8 * kMiB;
        spec.axis = core::CurveAxis::NvramBytes;
        spec.sizes = bench::nvramSizeGridBytes();
    } else {
        spec.base.kind = core::ModelKind::Volatile;
        spec.axis = core::CurveAxis::VolatileBytes;
        for (const double extra : {0.0, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0})
            spec.sizes.push_back(
                8 * kMiB + static_cast<Bytes>(extra * kMiB));
    }
    for (auto _ : state) {
        const auto rows =
            curve ? core::runCurveSim(ops, spec)
                  : core::runClientGrid(ops, core::curveGridModels(spec),
                                        spec.seed, 1);
        benchmark::DoNotOptimize(rows.front().appWriteBytes);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(spec.sizes.size()));
}
BENCHMARK(BM_CurveSweep)
    ->ArgNames({"nvram", "curve"})
    ->Args({0, 0})->Args({0, 1})
    ->Args({1, 0})->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

/** Trace file on disk for the ingest/pipeline benches, written once. */
const std::string &
benchTracePath(int trace, bool text)
{
    static std::map<std::uint64_t, std::string> paths;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(trace) << 1) | (text ? 1 : 0);
    const auto it = paths.find(key);
    if (it != paths.end())
        return it->second;
    const std::string path = "/tmp/nvfs_bench_ingest_" +
                             std::to_string(::getpid()) + "_t" +
                             std::to_string(trace) +
                             (text ? ".txt" : ".nvt");
    const auto buffer =
        workload::generateStandardTrace(trace, core::benchScale());
    if (text)
        trace::writeTraceText(path, buffer);
    else
        trace::writeTraceFile(path, buffer);
    return paths.emplace(key, path).first->second;
}

void
BM_ParallelIngest(benchmark::State &state)
{
    // mmap-chunked trace parse at a fixed worker count: jobs=1 is the
    // serial baseline for the parallel-ingest speedup.  Arg(1) picks
    // the format (0 = binary records, 1 = text lines).
    const auto jobs = static_cast<unsigned>(state.range(0));
    const bool text = state.range(1) != 0;
    const std::string &path = benchTracePath(7, text);
    util::ThreadPool pool(jobs);
    for (auto _ : state) {
        const auto buffer = text ? trace::readTraceText(path, &pool)
                                 : trace::readTraceFile(path, &pool);
        benchmark::DoNotOptimize(buffer.events.size());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(
            std::filesystem::file_size(path)));
}
BENCHMARK(BM_ParallelIngest)
    ->ArgNames({"jobs", "text"})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})
    ->UseRealTime();

void
BM_PipelineSweep(benchmark::State &state)
{
    // The pipelined multi-trace sweep: ingest+prep of trace k+1
    // overlaps the model-grid replay of trace k, and the ingest
    // itself fans out across the same pool.  jobs=1 is the strict
    // serial prepare-then-replay baseline; the jobs:N / jobs:1 ratio
    // is the pipeline speedup recorded in BENCH_e2e.json.
    const auto jobs = static_cast<unsigned>(state.range(0));
    std::vector<std::string> paths;
    for (const int trace : {3, 4, 7})
        paths.push_back(benchTracePath(trace, false));
    std::vector<core::ModelConfig> models;
    for (const double mb : {0.5, 1.0, 2.0}) {
        core::ModelConfig model;
        model.kind = core::ModelKind::Unified;
        model.volatileBytes = 8 * kMiB;
        model.nvramBytes = static_cast<Bytes>(mb * kMiB);
        models.push_back(model);
    }
    const core::SweepRunner runner(jobs);
    for (auto _ : state) {
        const auto rows = runner.runTraceSweep(paths, models);
        benchmark::DoNotOptimize(rows.front().front().appWriteBytes);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(paths.size() * models.size()));
}
BENCHMARK(BM_PipelineSweep)
    ->ArgName("jobs")
    ->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

// BENCHMARK_MAIN() expanded so the obs export hooks (NVFS_STATS_OUT /
// NVFS_TRACE_OUT) register before any benchmark runs —
// bench_compare.py reads the JSON snapshot to attach counter deltas
// to BENCH_e2e.json entries.
int
main(int argc, char **argv)
{
    nvfs::obs::autoExportFromEnv();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
