/**
 * @file
 * Section 2.6 ablation: memory-bus traffic and NVRAM access counts of
 * the two NVRAM models (Trace 7, 8 MB volatile + 8 MB NVRAM).
 *
 * Paper claims: the unified model generates >= 25% less file-cache
 * traffic on the local memory bus; it makes 2-2.5x as many NVRAM
 * accesses; cache->NVRAM transfers (partial updates of a clean cached
 * block) are under 1% of application write events.
 */

#include "bench_util.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Section 2.6: memory bus traffic and NVRAM accesses "
        "(Trace 7, 8 MB + 8 MB)",
        "unified does >= 25% less bus traffic; 2-2.5x more NVRAM "
        "accesses; cache->NVRAM transfers < 1% of writes");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);

    core::Metrics results[2];
    const core::ModelKind kinds[2] = {core::ModelKind::WriteAside,
                                      core::ModelKind::Unified};
    for (int i = 0; i < 2; ++i) {
        core::ModelConfig model;
        model.kind = kinds[i];
        model.volatileBytes = 8 * kMiB;
        model.nvramBytes = 8 * kMiB;
        results[i] = core::runClientSim(ops, model);
    }

    util::TextTable table({"metric", "write-aside", "unified",
                           "unified / write-aside"});
    auto ratio = [](double a, double b) {
        return b != 0.0 ? util::format("%.2fx", a / b)
                        : std::string("n/a");
    };
    const auto &wa = results[0];
    const auto &un = results[1];
    table.addRow({"bus traffic (MB)",
                  util::format("%.1f", toMiB(wa.busBytes)),
                  util::format("%.1f", toMiB(un.busBytes)),
                  ratio(static_cast<double>(un.busBytes),
                        static_cast<double>(wa.busBytes))});
    const double wa_acc = static_cast<double>(wa.nvramReadAccesses +
                                              wa.nvramWriteAccesses);
    const double un_acc = static_cast<double>(un.nvramReadAccesses +
                                              un.nvramWriteAccesses);
    table.addRow({"NVRAM accesses",
                  util::format("%.0f", wa_acc),
                  util::format("%.0f", un_acc),
                  ratio(un_acc, wa_acc)});
    table.addRow({"NVRAM reads",
                  util::format("%llu",
                               static_cast<unsigned long long>(
                                   wa.nvramReadAccesses)),
                  util::format("%llu",
                               static_cast<unsigned long long>(
                                   un.nvramReadAccesses)),
                  ratio(static_cast<double>(un.nvramReadAccesses),
                        static_cast<double>(wa.nvramReadAccesses))});
    table.addRow({"net write traffic %",
                  bench::pct(wa.netWriteTrafficPct()),
                  bench::pct(un.netWriteTrafficPct()), ""});
    table.addRow({"net total traffic %",
                  bench::pct(wa.netTotalTrafficPct()),
                  bench::pct(un.netTotalTrafficPct()), ""});
    std::printf("%s\n", table.render().c_str());

    std::printf("unified cache->NVRAM promotion traffic: %.2f%% of "
                "application write bytes (paper: < 1%%)\n",
                util::percent(
                    static_cast<double>(un.cacheToNvramBytes),
                    static_cast<double>(un.appWriteBytes)));
    std::printf("unified bus saving vs write-aside: %.1f%% (paper: "
                ">= 25%%)\n",
                util::percent(static_cast<double>(wa.busBytes) -
                                  static_cast<double>(un.busBytes),
                              static_cast<double>(wa.busBytes)));
    return 0;
}
