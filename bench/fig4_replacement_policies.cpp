/**
 * @file
 * Figure 4: replacement policies.  Net file write traffic achieved by
 * LRU, random, and omniscient NVRAM replacement on Trace 7, across
 * NVRAM sizes (unified model, 8 MB volatile cache).  Clock is added
 * as an extra realistic policy beyond the paper's set.
 */

#include "bench_util.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Figure 4: replacement policies (Trace 7, net write traffic "
        "vs. NVRAM size)",
        "random behaves almost as well as LRU; omniscient is only "
        "10-15% better at 1 MB, at most ~22% anywhere");

    const double scale = core::benchScale();
    const int trace = 7;
    const auto &ops = core::standardOps(trace, scale);
    const double sizes_mb[] = {0.03125, 0.0625, 0.125, 0.25, 0.5,
                               1, 2, 4, 8, 16};

    util::TextTable table({"NVRAM (MB)", "LRU", "random", "clock",
                           "omniscient"});
    for (const double mb : sizes_mb) {
        std::vector<std::string> row = {util::format("%g", mb)};
        for (const auto policy :
             {cache::PolicyKind::Lru, cache::PolicyKind::Random,
              cache::PolicyKind::Clock, cache::PolicyKind::Omniscient}) {
            core::ModelConfig model;
            model.kind = core::ModelKind::Unified;
            model.volatileBytes = 8 * kMiB;
            model.nvramBytes = static_cast<Bytes>(mb * kMiB);
            model.nvramPolicy = policy;
            if (policy == cache::PolicyKind::Omniscient)
                model.oracle = &core::standardOracle(trace, scale);
            const core::Metrics metrics = core::runClientSim(ops, model);
            row.push_back(bench::pct(metrics.netWriteTrafficPct()));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render("net write traffic (%)").c_str());
    return 0;
}
