/**
 * @file
 * Figure 4: replacement policies.  Net file write traffic achieved by
 * LRU, random, and omniscient NVRAM replacement on Trace 7, across
 * NVRAM sizes (unified model, 8 MB volatile cache).  Clock is added
 * as an extra realistic policy beyond the paper's set.  The LRU
 * series runs through the single-pass curve engine (one replay for
 * all ten sizes); the other policies break the inclusion property
 * and stay on the per-size grid.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Figure 4: replacement policies (Trace 7, net write traffic "
        "vs. NVRAM size)",
        "random behaves almost as well as LRU; omniscient is only "
        "10-15% better at 1 MB, at most ~22% anywhere");

    const double scale = core::benchScale();
    const int trace = 7;
    const auto &ops = core::standardOps(trace, scale);

    const core::SweepRunner runner;

    core::CurveSpec lru_spec;
    lru_spec.base.kind = core::ModelKind::Unified;
    lru_spec.base.volatileBytes = 8 * kMiB;
    lru_spec.axis = core::CurveAxis::NvramBytes;
    lru_spec.sizes = bench::nvramSizeGridBytes();
    const auto lru = runner.runCurveSweep(ops, lru_spec);

    std::vector<core::ModelConfig> models;
    for (const double mb : bench::kNvramSizeGrid) {
        for (const auto policy :
             {cache::PolicyKind::Random, cache::PolicyKind::Clock,
              cache::PolicyKind::Omniscient}) {
            core::ModelConfig model;
            model.kind = core::ModelKind::Unified;
            model.volatileBytes = 8 * kMiB;
            model.nvramBytes = static_cast<Bytes>(mb * kMiB);
            model.nvramPolicy = policy;
            if (policy == cache::PolicyKind::Omniscient)
                model.oracle = &core::standardOracle(trace, scale);
            models.push_back(model);
        }
    }
    const auto results = runner.runClientSweep(ops, models);

    util::TextTable table({"NVRAM (MB)", "LRU", "random", "clock",
                           "omniscient"});
    std::size_t next = 0;
    std::size_t size_index = 0;
    for (const double mb : bench::kNvramSizeGrid) {
        std::vector<std::string> row = {util::format("%g", mb)};
        row.push_back(
            bench::pct(lru[size_index++].netWriteTrafficPct()));
        for (int column = 0; column < 3; ++column)
            row.push_back(
                bench::pct(results[next++].netWriteTrafficPct()));
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render("net write traffic (%)").c_str());
    return 0;
}
