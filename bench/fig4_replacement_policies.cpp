/**
 * @file
 * Figure 4: replacement policies.  Net file write traffic achieved by
 * LRU, random, and omniscient NVRAM replacement on Trace 7, across
 * NVRAM sizes (unified model, 8 MB volatile cache).  Clock is added
 * as an extra realistic policy beyond the paper's set.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "Figure 4: replacement policies (Trace 7, net write traffic "
        "vs. NVRAM size)",
        "random behaves almost as well as LRU; omniscient is only "
        "10-15% better at 1 MB, at most ~22% anywhere");

    const double scale = core::benchScale();
    const int trace = 7;
    const auto &ops = core::standardOps(trace, scale);
    const double sizes_mb[] = {0.03125, 0.0625, 0.125, 0.25, 0.5,
                               1, 2, 4, 8, 16};

    std::vector<core::ModelConfig> models;
    for (const double mb : sizes_mb) {
        for (const auto policy :
             {cache::PolicyKind::Lru, cache::PolicyKind::Random,
              cache::PolicyKind::Clock, cache::PolicyKind::Omniscient}) {
            core::ModelConfig model;
            model.kind = core::ModelKind::Unified;
            model.volatileBytes = 8 * kMiB;
            model.nvramBytes = static_cast<Bytes>(mb * kMiB);
            model.nvramPolicy = policy;
            if (policy == cache::PolicyKind::Omniscient)
                model.oracle = &core::standardOracle(trace, scale);
            models.push_back(model);
        }
    }
    const core::SweepRunner runner;
    const auto results = runner.runClientSweep(ops, models);

    util::TextTable table({"NVRAM (MB)", "LRU", "random", "clock",
                           "omniscient"});
    std::size_t next = 0;
    for (const double mb : sizes_mb) {
        std::vector<std::string> row = {util::format("%g", mb)};
        for (int column = 0; column < 4; ++column)
            row.push_back(
                bench::pct(results[next++].netWriteTrafficPct()));
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render("net write traffic (%)").c_str());
    return 0;
}
