/**
 * @file
 * Section 2.7: non-volatile versus volatile memory per dollar.  Builds
 * the Figure 6 curves, finds how much extra volatile memory produces
 * the same traffic as each NVRAM size, and compares the break-even
 * price ratio against the Table 1 prices.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"
#include "nvram/cost.hpp"

using namespace nvfs;

namespace {

std::vector<nvram::CurvePoint>
buildCurve(const core::SweepRunner &runner, const prep::OpStream &ops,
           core::ModelKind kind, Bytes base,
           const std::vector<double> &extras_mb)
{
    // Both Figure 6 curves are LRU-managed size sweeps, so each one
    // is a single curve-engine replay over all its points.
    core::CurveSpec spec;
    spec.base.kind = kind;
    if (kind == core::ModelKind::Volatile) {
        spec.axis = core::CurveAxis::VolatileBytes;
        for (const double extra : extras_mb)
            spec.sizes.push_back(base +
                                 static_cast<Bytes>(extra * kMiB));
    } else {
        spec.base.volatileBytes = base;
        spec.axis = core::CurveAxis::NvramBytes;
        for (const double extra : extras_mb)
            spec.sizes.push_back(
                extra == 0 ? kBlockSize
                           : static_cast<Bytes>(extra * kMiB));
    }
    const auto results = runner.runCurveSweep(ops, spec);

    std::vector<nvram::CurvePoint> curve;
    for (std::size_t i = 0; i < extras_mb.size(); ++i)
        curve.push_back(
            {extras_mb[i], results[i].netTotalTrafficPct()});
    return curve;
}

} // namespace

int
main()
{
    bench::header(
        "Section 2.7: cost-effectiveness of NVRAM vs. volatile memory "
        "(Trace 7)",
        "with 8 MB volatile, NVRAM wins if priced < ~2x DRAM (not yet "
        "true in 1992); with 16 MB volatile, 1/2 MB NVRAM ~= 6 MB "
        "DRAM and NVRAM wins even at 1992 prices");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);
    const std::vector<double> extras = {0, 0.5, 1, 2, 4, 6, 8};

    const double dram = nvram::dramPricePerMB();
    const core::SweepRunner runner;

    for (const Bytes base : {Bytes{8 * kMiB}, Bytes{16 * kMiB}}) {
        const auto vol_curve = buildCurve(
            runner, ops, core::ModelKind::Volatile, base, extras);
        const auto uni_curve = buildCurve(
            runner, ops, core::ModelKind::Unified, base, extras);

        std::printf("base volatile cache: %s\n",
                    util::formatBytes(base).c_str());
        util::TextTable table({"NVRAM MB", "traffic %",
                               "equivalent volatile MB",
                               "break-even price ratio",
                               "1992 verdict"});
        for (const double mb : {0.5, 1.0, 2.0, 4.0}) {
            const double equivalent = nvram::equivalentVolatileMB(
                vol_curve, uni_curve, mb);
            const double ratio = nvram::breakEvenPriceRatio(
                vol_curve, uni_curve, mb);
            const double nvram_price =
                nvram::cheapestNvramPricePerMB(mb);
            const bool wins = ratio >= nvram_price / dram;
            double traffic = uni_curve.back().trafficPct;
            for (const auto &p : uni_curve) {
                if (p.extraMB == mb) {
                    traffic = p.trafficPct;
                    break;
                }
            }
            table.addRow({util::format("%g", mb), bench::pct(traffic),
                          util::format("%.1f", equivalent),
                          util::format("%.1fx", ratio),
                          wins ? "buy NVRAM" : "buy DRAM"});
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("1992 prices: DRAM $%.0f/MB; cheapest small-config "
                "NVRAM $%.0f/MB (%.1fx)\n",
                dram, nvram::cheapestNvramPricePerMB(1.0),
                nvram::cheapestNvramPricePerMB(1.0) / dram);
    return 0;
}
