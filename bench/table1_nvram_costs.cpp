/**
 * @file
 * Table 1: 1992 prices of NVRAM components versus volatile DRAM.
 * These feed the Section 2.7 cost-effectiveness analysis; the table
 * itself is published data, reproduced from the cost model.
 */

#include "bench_util.hpp"
#include "nvram/cost.hpp"

using namespace nvfs;

int
main()
{
    bench::header("Table 1: current (1992) NVRAM costs",
                  "NVRAM is 4-6x the per-megabyte cost of DRAM; "
                  "16 MB boards amortize battery overhead");

    util::TextTable table({"Component", "Bus", "Speed (ns)",
                           "Batteries", "$/MB", "Min config (MB)"});
    for (const auto &row : nvram::costTable1992()) {
        table.addRow({row.component, row.bus,
                      util::format("%.0f", row.speedNs),
                      util::format("%d", row.lithiumBatteries),
                      util::format("%.0f", row.pricePerMB),
                      util::format("%.1f", row.minConfigMB)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("derived: DRAM = $%.0f/MB; cheapest NVRAM at 1 MB = "
                "$%.0f/MB (%.1fx DRAM);\n"
                "         cheapest NVRAM at 16 MB = $%.0f/MB (%.1fx "
                "DRAM)\n",
                nvram::dramPricePerMB(),
                nvram::cheapestNvramPricePerMB(1.0),
                nvram::cheapestNvramPricePerMB(1.0) /
                    nvram::dramPricePerMB(),
                nvram::cheapestNvramPricePerMB(16.0),
                nvram::cheapestNvramPricePerMB(16.0) /
                    nvram::dramPricePerMB());
    return 0;
}
