/**
 * @file
 * Section 2.1's first simplification, ablated: "Sprite's caches
 * change in size, according to the relative memory needs of the file
 * system and the virtual memory system.  For simplicity, we assumed
 * caches of static size in this study."
 *
 * Runs the volatile model with the real dynamic behaviour (capacity
 * oscillating against VM pressure) at several floor fractions, to
 * show how much the static-size simplification can bias the baseline.
 */

#include "bench_util.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "volatile-model ablation: static vs. dynamic cache sizing "
        "(Trace 7, 8 MB)",
        "the paper simulated a static cache; real Sprite caches "
        "shrink under VM pressure, costing some of both read and "
        "write absorption");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);

    util::TextTable table({"sizing", "net write %", "net total %",
                           "server reads MB"});
    {
        core::ModelConfig model;
        model.kind = core::ModelKind::Volatile;
        model.volatileBytes = 8 * kMiB;
        const auto metrics = core::runClientSim(ops, model);
        table.addRow({"static 8 MB (the paper's model)",
                      bench::pct(metrics.netWriteTrafficPct()),
                      bench::pct(metrics.netTotalTrafficPct()),
                      util::format("%.1f",
                                   toMiB(metrics.serverReadBytes))});
    }
    for (const double floor : {0.75, 0.5, 0.25}) {
        core::ModelConfig model;
        model.kind = core::ModelKind::Volatile;
        model.volatileBytes = 8 * kMiB;
        model.dynamicSizing = true;
        model.dynamicMinFraction = floor;
        const auto metrics = core::runClientSim(ops, model);
        table.addRow({util::format("dynamic, floor %.0f%%",
                                   100.0 * floor),
                      bench::pct(metrics.netWriteTrafficPct()),
                      bench::pct(metrics.netTotalTrafficPct()),
                      util::format("%.1f",
                                   toMiB(metrics.serverReadBytes))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("shrink phases evict blocks early (read misses and "
                "forced write-backs);\nthe static simplification is "
                "therefore a slightly optimistic baseline.\n");
    return 0;
}
