/**
 * @file
 * The paper's premise, quantified on a network model: "As file caches
 * on both clients and servers continue to grow and satisfy even more
 * read traffic, the proportion of write traffic will increase and
 * could potentially become a bottleneck."
 *
 * Runs Trace 7 at growing volatile cache sizes and reports what share
 * of the remaining client-server traffic is writes, plus the wire
 * time a 10 Mbit/s Ethernet would spend on it — with and without
 * 1 MB of client NVRAM.
 */

#include "bench_util.hpp"
#include "core/sim/sweep.hpp"
#include "net/network_model.hpp"

using namespace nvfs;

int
main()
{
    bench::header(
        "network ablation: writes become the bottleneck as caches "
        "grow",
        "client caches absorb ~60% of reads but only ~10% of writes; "
        "writes approach and pass half the remaining traffic");

    const double scale = core::benchScale();
    const auto &ops = core::standardOps(7, scale);
    const net::NetworkModel wire;
    const TimeUs day = 24 * kUsPerHour;

    const double cache_mb[] = {4.0, 8.0, 16.0, 32.0, 64.0};
    std::vector<core::ModelConfig> models;
    for (const double mb : cache_mb) {
        core::ModelConfig vol;
        vol.kind = core::ModelKind::Volatile;
        vol.volatileBytes = static_cast<Bytes>(mb * kMiB);
        models.push_back(vol);

        core::ModelConfig uni = vol;
        uni.kind = core::ModelKind::Unified;
        uni.nvramBytes = kMiB;
        models.push_back(uni);
    }
    const core::SweepRunner runner;
    const auto results = runner.runClientSweep(ops, models);

    util::TextTable table({"volatile MB", "write share of traffic %",
                           "wire time (volatile) s",
                           "wire time (+1 MB NVRAM) s", "saving %"});
    std::size_t next = 0;
    for (const double mb : cache_mb) {
        const auto &base = results[next++];
        const auto &nvram = results[next++];

        const Bytes base_total =
            base.totalServerWrites() + base.serverReadBytes;
        const Bytes nvram_total =
            nvram.totalServerWrites() + nvram.serverReadBytes;
        const double base_ms = wire.transfer(base_total).totalMs();
        const double nvram_ms = wire.transfer(nvram_total).totalMs();

        table.addRow(
            {util::format("%g", mb),
             bench::pct(util::percent(
                 static_cast<double>(base.totalServerWrites()),
                 static_cast<double>(base_total))),
             util::format("%.1f", base_ms / 1000.0),
             util::format("%.1f", nvram_ms / 1000.0),
             bench::pct(util::percent(base_ms - nvram_ms, base_ms))});
        (void)day;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("as the volatile cache grows, reads vanish from the "
                "wire and the write share rises —\nexactly the trend "
                "that motivates client NVRAM.\n");
    return 0;
}
