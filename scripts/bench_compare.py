#!/usr/bin/env python3
"""Run the perf benchmarks and emit BENCH_microbench.json + BENCH_e2e.json.

Runs ``perf_microbench`` with google-benchmark's JSON reporter and
normalizes the result into compact {benchmark: {real_time_ns, ...}}
summaries.  The whole-trace macrobenchmarks — BM_ClusterSimReplay and
the pipelined BM_PipelineSweep — go to BENCH_e2e.json, which
additionally pairs each extent-engine run with its legacy-engine twin
(and each multi-job pipeline run with its jobs:1 baseline) and records
the speedup ratios; everything else goes to BENCH_microbench.json so
CI can archive a perf snapshot per commit.  With ``--baseline
previous.json`` it also prints a per-benchmark comparison and (with
``--max-regression``) fails when any microbenchmark slowed down beyond
the allowed ratio.  With ``--e2e-baseline BENCH_e2e.json`` the
whole-trace replays are diffed against the committed snapshot and any
run more than ``--e2e-warn-regression`` (default 10%) slower gets a
WARNING — machines differ, so this never fails the run.

Usage:
    bench_compare.py --bench build/bench/perf_microbench \
        [--output BENCH_microbench.json] \
        [--e2e-output BENCH_e2e.json] \
        [--baseline old.json] [--max-regression 1.30] \
        [--e2e-baseline BENCH_e2e.json] [--e2e-warn-regression 1.10] \
        [--filter REGEX] [--min-time SECONDS] [--repetitions N]
"""

import argparse
import json
import re
import subprocess
import sys

E2E_PREFIXES = ("BM_ClusterSimReplay", "BM_PipelineSweep")
E2E_NAME = re.compile(
    r"^BM_ClusterSimReplay/trace:(\d+)/model:(\d+)/engine:(\d+)$")
PIPELINE_NAME = re.compile(
    r"^BM_PipelineSweep/jobs:(\d+)(?:/real_time)?$")
MODEL_NAMES = {0: "volatile", 1: "write-aside", 2: "unified"}


def is_e2e(name):
    return name.startswith(E2E_PREFIXES)


def run_benchmarks(bench, bench_filter, min_time, repetitions):
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if repetitions > 1:
        cmd.append(f"--benchmark_repetitions={repetitions}")
        cmd.append("--benchmark_report_aggregates_only=true")
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed: {' '.join(cmd)}")
    return json.loads(proc.stdout)


def summarize(raw, keep):
    """Flatten the google-benchmark report to one entry per benchmark."""
    out = {"context": raw.get("context", {}), "benchmarks": {}}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            # With --repetitions the report carries one aggregate row
            # per statistic; keep the median as the noise-robust
            # per-benchmark summary (keyed by the plain run name).
            if bench.get("aggregate_name") != "median":
                continue
            name = bench.get("run_name", bench["name"])
        else:
            name = bench["name"]
        if not keep(name):
            continue
        # google-benchmark reports times in the benchmark's display
        # unit; normalize everything to nanoseconds.
        unit = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}.get(
            bench.get("time_unit", "ns"), 1)
        entry = {
            "real_time_ns": bench.get("real_time") * unit
            if bench.get("real_time") is not None else None,
            "cpu_time_ns": bench.get("cpu_time") * unit
            if bench.get("cpu_time") is not None else None,
            "iterations": bench.get("iterations"),
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        out["benchmarks"][name] = entry
    return out


def add_speedups(e2e):
    """Pair extent runs with their legacy twins and record speedups."""
    times = {}
    for name, entry in e2e["benchmarks"].items():
        match = E2E_NAME.match(name)
        if match and entry.get("real_time_ns"):
            trace, model, engine = (int(g) for g in match.groups())
            times[(trace, model, engine)] = entry["real_time_ns"]
    speedups = {}
    for (trace, model, engine), extent_time in sorted(times.items()):
        if engine != 1:
            continue
        legacy_time = times.get((trace, model, 0))
        if not legacy_time or not extent_time:
            continue
        key = f"trace{trace}/{MODEL_NAMES.get(model, model)}"
        speedups[key] = {
            "legacy_ms": legacy_time / 1e6,
            "extent_ms": extent_time / 1e6,
            "speedup": legacy_time / extent_time,
        }
    e2e["speedups"] = speedups

    # Pipelined sweep: each jobs:N run against its jobs:1 baseline.
    pipeline = {}
    for name, entry in e2e["benchmarks"].items():
        match = PIPELINE_NAME.match(name)
        if match and entry.get("real_time_ns"):
            pipeline[int(match.group(1))] = entry["real_time_ns"]
    serial = pipeline.get(1)
    pipeline_speedups = {}
    if serial:
        for jobs, time_ns in sorted(pipeline.items()):
            if jobs == 1:
                continue
            pipeline_speedups[f"jobs{jobs}"] = {
                "serial_ms": serial / 1e6,
                "pipelined_ms": time_ns / 1e6,
                "speedup": serial / time_ns,
            }
    e2e["pipeline_speedups"] = pipeline_speedups
    return e2e


def load_e2e_baseline(baseline_path):
    """Read the committed snapshot (before --e2e-output clobbers it —
    they are usually the same file)."""
    try:
        with open(baseline_path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as error:
        print(f"WARNING: cannot read e2e baseline {baseline_path}: "
              f"{error}", file=sys.stderr)
        return None


def warn_e2e_regressions(current, baseline, baseline_path, warn_ratio):
    """Diff whole-trace replays against the committed snapshot.

    Only warns: the committed BENCH_e2e.json was recorded on some
    other machine, so a slowdown here is a signal to look, not a CI
    failure.
    """
    base = baseline.get("benchmarks", {})
    warned = 0
    for name, entry in sorted(current["benchmarks"].items()):
        now = entry.get("real_time_ns")
        before = base.get(name, {}).get("real_time_ns")
        if not now or not before:
            continue
        ratio = now / before
        if ratio > warn_ratio:
            warned += 1
            print(f"WARNING: {name} is {ratio:.2f}x the committed "
                  f"baseline ({before / 1e6:.1f}ms -> "
                  f"{now / 1e6:.1f}ms)", file=sys.stderr)
    if warned == 0:
        print(f"e2e replays within {warn_ratio:.2f}x of "
              f"{baseline_path}")


def compare(current, baseline, max_regression):
    """Print a comparison table; return names regressed past the cap."""
    regressed = []
    base = baseline.get("benchmarks", {})
    rows = []
    for name, entry in sorted(current["benchmarks"].items()):
        now = entry.get("real_time_ns")
        before = base.get(name, {}).get("real_time_ns")
        if not now or not before:
            rows.append((name, now, before, None))
            continue
        ratio = now / before
        rows.append((name, now, before, ratio))
        if max_regression is not None and ratio > max_regression:
            regressed.append((name, ratio))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'benchmark':<{width}}  {'now':>12}  {'base':>12}  ratio")
    for name, now, before, ratio in rows:
        now_s = f"{now:.0f}ns" if now else "-"
        before_s = f"{before:.0f}ns" if before else "-"
        ratio_s = f"{ratio:.2f}x" if ratio is not None else "new"
        print(f"{name:<{width}}  {now_s:>12}  {before_s:>12}  {ratio_s}")
    return regressed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench",
                        default="build/bench/perf_microbench",
                        help="path to the perf_microbench binary")
    parser.add_argument("--output", default="BENCH_microbench.json",
                        help="where to write the JSON summary")
    parser.add_argument("--e2e-output", default="BENCH_e2e.json",
                        help="where to write the whole-trace replay "
                             "summary (BM_ClusterSimReplay runs)")
    parser.add_argument("--baseline",
                        help="previous BENCH_microbench.json to "
                             "compare against")
    parser.add_argument("--max-regression", type=float, default=None,
                        help="fail if any benchmark's real time grows "
                             "past this ratio vs the baseline "
                             "(e.g. 1.30 = 30%% slower)")
    parser.add_argument("--e2e-baseline",
                        help="committed BENCH_e2e.json to diff the "
                             "whole-trace replays against (warns, "
                             "never fails)")
    parser.add_argument("--e2e-warn-regression", type=float,
                        default=1.10,
                        help="warn when an e2e replay is this much "
                             "slower than the committed baseline "
                             "(default 1.10 = 10%% slower)")
    parser.add_argument("--filter", dest="bench_filter", default=None,
                        help="--benchmark_filter regex")
    parser.add_argument("--min-time", type=float, default=0.05,
                        help="--benchmark_min_time per benchmark")
    parser.add_argument("--repetitions", type=int, default=1,
                        help="repeat each benchmark N times and record "
                             "the median (robust against machine "
                             "noise)")
    args = parser.parse_args()

    raw = run_benchmarks(args.bench, args.bench_filter, args.min_time,
                         args.repetitions)
    summary = summarize(raw, lambda name: not is_e2e(name))
    with open(args.output, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output} "
          f"({len(summary['benchmarks'])} benchmarks)")

    e2e_baseline = (load_e2e_baseline(args.e2e_baseline)
                    if args.e2e_baseline else None)
    e2e = add_speedups(summarize(raw, is_e2e))
    if e2e["benchmarks"]:
        with open(args.e2e_output, "w") as fh:
            json.dump(e2e, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.e2e_output} "
              f"({len(e2e['benchmarks'])} replays)")
        for key, entry in sorted(e2e["speedups"].items()):
            print(f"  {key}: {entry['legacy_ms']:.1f}ms -> "
                  f"{entry['extent_ms']:.1f}ms "
                  f"({entry['speedup']:.2f}x)")
        for key, entry in sorted(e2e["pipeline_speedups"].items()):
            print(f"  pipeline {key}: {entry['serial_ms']:.1f}ms -> "
                  f"{entry['pipelined_ms']:.1f}ms "
                  f"({entry['speedup']:.2f}x)")
        if e2e_baseline is not None:
            warn_e2e_regressions(e2e, e2e_baseline,
                                 args.e2e_baseline,
                                 args.e2e_warn_regression)

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        regressed = compare(summary, baseline, args.max_regression)
        if regressed:
            for name, ratio in regressed:
                print(f"REGRESSION: {name} is {ratio:.2f}x the "
                      f"baseline (cap {args.max_regression:.2f}x)",
                      file=sys.stderr)
            raise SystemExit(1)


if __name__ == "__main__":
    main()
