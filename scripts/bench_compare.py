#!/usr/bin/env python3
"""Run the perf benchmarks and emit BENCH_microbench.json + BENCH_e2e.json.

Runs ``perf_microbench`` with google-benchmark's JSON reporter and
normalizes the result into compact {benchmark: {real_time_ns, ...}}
summaries.  The whole-trace macrobenchmarks — BM_ClusterSimReplay,
the pipelined BM_PipelineSweep, the BM_ReplayGrid scheduler, and the
BM_CurveSweep size-sweep pairs — go to BENCH_e2e.json, which
additionally pairs each extent-engine run with its legacy-engine twin
(each multi-job pipeline/grid run with its jobs:1 baseline, and each
single-pass curve sweep with its per-size grid twin) and records the
speedup ratios in both real and cpu time, plus host metadata
(hardware_concurrency, NVFS_JOBS / NVFS_GRID_JOBS); everything else
goes to BENCH_microbench.json so CI can archive a perf snapshot per
commit.  With ``--baseline
previous.json`` it also prints a per-benchmark comparison and (with
``--max-regression``) fails when any microbenchmark slowed down beyond
the allowed ratio.  With ``--e2e-baseline BENCH_e2e.json`` the
whole-trace replays are diffed against the committed snapshot: a run
more than ``--e2e-warn-regression`` (default 10%) slower in real time
gets a WARNING, and with ``--e2e-max-regression`` (the CI gate) a cpu
median past the cap fails the run with exit 1.

Usage:
    bench_compare.py --bench build/bench/perf_microbench \
        [--output BENCH_microbench.json] \
        [--e2e-output BENCH_e2e.json] \
        [--baseline old.json] [--max-regression 1.30] \
        [--e2e-baseline BENCH_e2e.json] [--e2e-warn-regression 1.10] \
        [--e2e-max-regression 1.10] \
        [--filter REGEX] [--min-time SECONDS] [--repetitions N]
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

E2E_PREFIXES = ("BM_ClusterSimReplay", "BM_PipelineSweep",
                "BM_ReplayGrid", "BM_CurveSweep")
E2E_NAME = re.compile(
    r"^BM_ClusterSimReplay/trace:(\d+)/model:(\d+)/engine:(\d+)$")
PIPELINE_NAME = re.compile(
    r"^BM_PipelineSweep/jobs:(\d+)(?:/real_time)?$")
GRID_NAME = re.compile(
    r"^BM_ReplayGrid/jobs:(\d+)(?:/real_time)?$")
CURVE_NAME = re.compile(
    r"^BM_CurveSweep/nvram:(\d+)/curve:(\d+)$")
MODEL_NAMES = {0: "volatile", 1: "write-aside", 2: "unified"}
CURVE_AXIS_NAMES = {0: "volatile_axis", 1: "nvram_axis"}

# The single-pass curve engine must beat the per-size grid by at least
# this factor single-threaded; the CI gate fails a run below the floor.
CURVE_SPEEDUP_FLOOR = 1.5


def is_e2e(name):
    return name.startswith(E2E_PREFIXES)


def run_benchmarks(bench, bench_filter, min_time, repetitions):
    """Run perf_microbench; return (report, obs counter snapshot).

    The bench binary honours NVFS_STATS_OUT (nvfs::obs auto-export),
    so the run doubles as the counter capture: steal rates, cache hit
    ratios, and extent-probe totals land next to the medians they
    explain.
    """
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if repetitions > 1:
        cmd.append(f"--benchmark_repetitions={repetitions}")
        cmd.append("--benchmark_report_aggregates_only=true")
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    env = dict(os.environ)
    with tempfile.NamedTemporaryFile(
            prefix="nvfs-stats-", suffix=".json",
            delete=False) as stats_file:
        stats_path = stats_file.name
    env["NVFS_STATS_OUT"] = stats_path
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              env=env)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit(f"benchmark run failed: {' '.join(cmd)}")
        counters = load_stats_snapshot(stats_path)
    finally:
        try:
            os.unlink(stats_path)
        except OSError:
            pass
    return json.loads(proc.stdout), counters


def load_stats_snapshot(path):
    """Flatten an NVFS_STATS_OUT snapshot to {name: value}.

    Counters/max report their value; timers report total_ns and count
    (as name.total_ns / name.count).  Returns {} when the snapshot is
    missing or malformed (e.g. a -DNVFS_NO_STATS bench binary still
    writes an empty stats object).
    """
    try:
        with open(path) as fh:
            snap = json.load(fh)
    except (OSError, ValueError):
        return {}
    stats = snap.get("stats") if isinstance(snap, dict) else None
    if not isinstance(stats, dict):
        return {}
    flat = {}
    for name, entry in sorted(stats.items()):
        if not isinstance(entry, dict):
            continue
        if entry.get("kind") == "timer":
            flat[f"{name}.total_ns"] = entry.get("total_ns", 0)
            flat[f"{name}.count"] = entry.get("count", 0)
        else:
            flat[name] = entry.get("value", 0)
    return flat


def counter_deltas(current, baseline):
    """Per-counter change vs the committed snapshot's counters."""
    base = (baseline or {}).get("counters")
    if not isinstance(base, dict):
        return {}
    deltas = {}
    for name, value in sorted(current.items()):
        before = base.get(name)
        if isinstance(before, (int, float)) and \
                isinstance(value, (int, float)):
            deltas[name] = value - before
    return deltas


def summarize(raw, keep):
    """Flatten the google-benchmark report to one entry per benchmark."""
    out = {"context": raw.get("context", {}), "benchmarks": {}}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            # With --repetitions the report carries one aggregate row
            # per statistic; keep the median as the noise-robust
            # per-benchmark summary (keyed by the plain run name).
            if bench.get("aggregate_name") != "median":
                continue
            name = bench.get("run_name", bench["name"])
        else:
            name = bench["name"]
        if not keep(name):
            continue
        # google-benchmark reports times in the benchmark's display
        # unit; normalize everything to nanoseconds.
        unit = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}.get(
            bench.get("time_unit", "ns"), 1)
        entry = {
            "real_time_ns": bench.get("real_time") * unit
            if bench.get("real_time") is not None else None,
            "cpu_time_ns": bench.get("cpu_time") * unit
            if bench.get("cpu_time") is not None else None,
            "iterations": bench.get("iterations"),
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        out["benchmarks"][name] = entry
    return out


def _jobs_speedups(e2e, pattern, base_key, fast_key):
    """jobs:N vs the jobs:1 baseline, in both real and cpu time."""
    real = {}
    cpu = {}
    for name, entry in e2e["benchmarks"].items():
        match = pattern.match(name)
        if match and entry.get("real_time_ns"):
            jobs = int(match.group(1))
            real[jobs] = entry["real_time_ns"]
            cpu[jobs] = entry.get("cpu_time_ns")
    serial = real.get(1)
    speedups = {}
    if serial:
        for jobs, time_ns in sorted(real.items()):
            if jobs == 1:
                continue
            entry = {
                base_key: serial / 1e6,
                fast_key: time_ns / 1e6,
                "speedup": serial / time_ns,
            }
            if cpu.get(1) and cpu.get(jobs):
                entry[base_key.replace("_ms", "_cpu_ms")] = \
                    cpu[1] / 1e6
                entry[fast_key.replace("_ms", "_cpu_ms")] = \
                    cpu[jobs] / 1e6
            speedups[f"jobs{jobs}"] = entry
    return speedups


def add_speedups(e2e):
    """Pair extent runs with their legacy twins and record speedups.

    Every pair records both real and cpu time: on a loaded machine a
    single replay's real time can run well past its cpu time (the old
    trace:3/model:2/engine:1 snapshot was ~1.6x), so the cpu column is
    the noise-robust one to read alongside the median aggregation.
    """
    times = {}
    for name, entry in e2e["benchmarks"].items():
        match = E2E_NAME.match(name)
        if match and entry.get("real_time_ns"):
            trace, model, engine = (int(g) for g in match.groups())
            times[(trace, model, engine)] = (
                entry["real_time_ns"], entry.get("cpu_time_ns"))
    speedups = {}
    for (trace, model, engine), extent in sorted(times.items()):
        if engine != 1:
            continue
        legacy = times.get((trace, model, 0))
        if not legacy or not legacy[0] or not extent[0]:
            continue
        key = f"trace{trace}/{MODEL_NAMES.get(model, model)}"
        speedups[key] = {
            "legacy_ms": legacy[0] / 1e6,
            "extent_ms": extent[0] / 1e6,
            "speedup": legacy[0] / extent[0],
        }
        if legacy[1] and extent[1]:
            speedups[key]["legacy_cpu_ms"] = legacy[1] / 1e6
            speedups[key]["extent_cpu_ms"] = extent[1] / 1e6
            speedups[key]["cpu_speedup"] = legacy[1] / extent[1]
    e2e["speedups"] = speedups

    # Pipelined sweep and replay grid: jobs:N vs the jobs:1 baseline.
    e2e["pipeline_speedups"] = _jobs_speedups(
        e2e, PIPELINE_NAME, "serial_ms", "pipelined_ms")
    e2e["grid_speedups"] = _jobs_speedups(
        e2e, GRID_NAME, "serial_ms", "grid_ms")

    # Single-pass curve engine vs the per-size grid, per sweep axis.
    # Both runs are single-threaded (width=1 grid baseline), so the
    # ratio is the pure algorithmic win of the multi-size replay.
    curve_times = {}
    for name, entry in e2e["benchmarks"].items():
        match = CURVE_NAME.match(name)
        if match and entry.get("real_time_ns"):
            axis, curve = (int(g) for g in match.groups())
            curve_times[(axis, curve)] = (
                entry["real_time_ns"], entry.get("cpu_time_ns"))
    curve_speedups = {}
    for axis, key in sorted(CURVE_AXIS_NAMES.items()):
        grid = curve_times.get((axis, 0))
        curve = curve_times.get((axis, 1))
        if not grid or not curve or not grid[0] or not curve[0]:
            continue
        curve_speedups[key] = {
            "grid_ms": grid[0] / 1e6,
            "curve_ms": curve[0] / 1e6,
            "speedup": grid[0] / curve[0],
        }
        if grid[1] and curve[1]:
            curve_speedups[key]["grid_cpu_ms"] = grid[1] / 1e6
            curve_speedups[key]["curve_cpu_ms"] = curve[1] / 1e6
            curve_speedups[key]["cpu_speedup"] = grid[1] / curve[1]
    e2e["curve_speedups"] = curve_speedups
    return e2e


def host_metadata(raw):
    """Pin down the machine shape behind the recorded numbers.

    The speedup ratios only mean something next to the parallelism
    that was available: std::thread::hardware_concurrency (surfaced
    as num_cpus in the google-benchmark context) and the NVFS_JOBS /
    NVFS_GRID_JOBS overrides in effect during the run.
    """
    return {
        "hardware_concurrency": raw.get("context", {}).get(
            "num_cpus", os.cpu_count()),
        "env": {
            "NVFS_JOBS": os.environ.get("NVFS_JOBS"),
            "NVFS_GRID_JOBS": os.environ.get("NVFS_GRID_JOBS"),
        },
    }


def check_curve_floor(e2e, max_ratio):
    """The curve engine must keep beating the grid.

    Part of the ``--e2e-max-regression`` gate: a curve_speedups entry
    whose real-time speedup falls below CURVE_SPEEDUP_FLOOR means the
    single-pass engine lost its reason to exist, which no baseline
    diff would catch if both sides slowed down together.
    """
    if max_ratio is None:
        return []
    failed = []
    for key, entry in sorted(e2e.get("curve_speedups", {}).items()):
        if entry["speedup"] < CURVE_SPEEDUP_FLOOR:
            failed.append((key, entry["speedup"]))
            print(f"REGRESSION: curve engine speedup on {key} is "
                  f"{entry['speedup']:.2f}x, below the "
                  f"{CURVE_SPEEDUP_FLOOR:.1f}x floor "
                  f"({entry['grid_ms']:.1f}ms grid vs "
                  f"{entry['curve_ms']:.1f}ms curve)", file=sys.stderr)
    return failed


def load_e2e_baseline(baseline_path):
    """Read the committed snapshot (before --e2e-output clobbers it —
    they are usually the same file).

    Tolerates a malformed file: anything that is not a dict with a
    dict "benchmarks" member warns and counts as "no baseline" —
    a truncated snapshot used to crash the comparison with a
    KeyError/AttributeError deep inside check_e2e_regressions.
    """
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as error:
        print(f"WARNING: cannot read e2e baseline {baseline_path}: "
              f"{error}", file=sys.stderr)
        return None
    if not isinstance(baseline, dict) or \
            not isinstance(baseline.get("benchmarks"), dict):
        print(f"WARNING: e2e baseline {baseline_path} is not a "
              f"benchmark snapshot (no 'benchmarks' object); "
              f"skipping the comparison", file=sys.stderr)
        return None
    return baseline


def baseline_times(base, name):
    """(real_ns, cpu_ns) of one baseline entry, or None when the entry
    is missing, malformed, or has a zero/absent real median.

    A missing entry (a benchmark added since the snapshot) and a zero
    median (a truncated or hand-edited snapshot) both used to surface
    as KeyError / ZeroDivisionError mid-comparison; they are
    skip-with-warning now, and only ``--e2e-max-regression`` decides
    whether anything fails the run.
    """
    entry = base.get(name)
    if not isinstance(entry, dict):
        print(f"WARNING: no baseline entry for {name}; skipping",
              file=sys.stderr)
        return None
    before = entry.get("real_time_ns")
    if not isinstance(before, (int, float)) or before <= 0:
        print(f"WARNING: baseline median for {name} is "
              f"{before!r} (zero or malformed); skipping",
              file=sys.stderr)
        return None
    before_cpu = entry.get("cpu_time_ns")
    if not isinstance(before_cpu, (int, float)) or before_cpu <= 0:
        before_cpu = None
    return before, before_cpu


def check_e2e_regressions(current, baseline, baseline_path,
                          warn_ratio, max_ratio):
    """Diff whole-trace replays against the committed snapshot.

    Both real and cpu medians are reported.  Real-time slowdowns past
    ``warn_ratio`` only warn — the committed BENCH_e2e.json was
    recorded on some other machine, and real time on a shared runner
    absorbs scheduler noise the benchmark never executed (the old
    trace:3/model:2/engine:1 snapshot ran ~1.6x its cpu time that
    way).  With ``max_ratio`` set (the CI gate), a *cpu*-time median
    past the cap is a genuine slowdown and returns the offending
    names for a hard failure.
    """
    base = baseline.get("benchmarks", {})
    warned = 0
    failed = []
    for name, entry in sorted(current["benchmarks"].items()):
        times = baseline_times(base, name)
        if times is None:
            continue
        before, before_cpu = times
        now = entry.get("real_time_ns")
        now_cpu = entry.get("cpu_time_ns")
        cpu_ratio = (now_cpu / before_cpu
                     if now_cpu and before_cpu else None)
        if now and before:
            ratio = now / before
            if ratio > warn_ratio:
                warned += 1
                cpu_s = (f", cpu {cpu_ratio:.2f}x"
                         if cpu_ratio is not None else "")
                print(f"WARNING: {name} is {ratio:.2f}x the committed "
                      f"baseline ({before / 1e6:.1f}ms -> "
                      f"{now / 1e6:.1f}ms{cpu_s})", file=sys.stderr)
        if (max_ratio is not None and cpu_ratio is not None
                and cpu_ratio > max_ratio):
            failed.append((name, cpu_ratio))
            print(f"REGRESSION: {name} cpu median is {cpu_ratio:.2f}x "
                  f"the committed baseline "
                  f"({before_cpu / 1e6:.1f}ms -> {now_cpu / 1e6:.1f}ms,"
                  f" cap {max_ratio:.2f}x)", file=sys.stderr)
        elif (max_ratio is not None and cpu_ratio is None
              and now and before and now / before > max_ratio):
            # No cpu column to fall back on: gate on real time.
            failed.append((name, now / before))
            print(f"REGRESSION: {name} is {now / before:.2f}x the "
                  f"committed baseline (cap {max_ratio:.2f}x, no cpu "
                  f"median recorded)", file=sys.stderr)
    if warned == 0 and not failed:
        print(f"e2e replays within {warn_ratio:.2f}x of "
              f"{baseline_path}")
    return failed


def compare(current, baseline, max_regression):
    """Print a comparison table; return names regressed past the cap."""
    regressed = []
    base = baseline.get("benchmarks", {}) \
        if isinstance(baseline, dict) else {}
    if not isinstance(base, dict):
        print("WARNING: baseline has no 'benchmarks' object; every "
              "benchmark reads as new", file=sys.stderr)
        base = {}
    rows = []
    for name, entry in sorted(current["benchmarks"].items()):
        now = entry.get("real_time_ns")
        before_entry = base.get(name)
        before = before_entry.get("real_time_ns") \
            if isinstance(before_entry, dict) else None
        if not isinstance(before, (int, float)) or before <= 0:
            before = None
        if not now or not before:
            rows.append((name, now, before, None))
            continue
        ratio = now / before
        rows.append((name, now, before, ratio))
        if max_regression is not None and ratio > max_regression:
            regressed.append((name, ratio))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'benchmark':<{width}}  {'now':>12}  {'base':>12}  ratio")
    for name, now, before, ratio in rows:
        now_s = f"{now:.0f}ns" if now else "-"
        before_s = f"{before:.0f}ns" if before else "-"
        ratio_s = f"{ratio:.2f}x" if ratio is not None else "new"
        print(f"{name:<{width}}  {now_s:>12}  {before_s:>12}  {ratio_s}")
    return regressed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench",
                        default="build/bench/perf_microbench",
                        help="path to the perf_microbench binary")
    parser.add_argument("--output", default="BENCH_microbench.json",
                        help="where to write the JSON summary")
    parser.add_argument("--e2e-output", default="BENCH_e2e.json",
                        help="where to write the whole-trace replay "
                             "summary (BM_ClusterSimReplay runs)")
    parser.add_argument("--baseline",
                        help="previous BENCH_microbench.json to "
                             "compare against")
    parser.add_argument("--max-regression", type=float, default=None,
                        help="fail if any benchmark's real time grows "
                             "past this ratio vs the baseline "
                             "(e.g. 1.30 = 30%% slower)")
    parser.add_argument("--e2e-baseline",
                        help="committed BENCH_e2e.json to diff the "
                             "whole-trace replays against (warns, "
                             "never fails)")
    parser.add_argument("--e2e-warn-regression", type=float,
                        default=1.10,
                        help="warn when an e2e replay's real time is "
                             "this much slower than the committed "
                             "baseline (default 1.10 = 10%% slower)")
    parser.add_argument("--e2e-max-regression", type=float,
                        default=None,
                        help="fail (exit 1) when an e2e replay's cpu "
                             "median grows past this ratio vs the "
                             "committed baseline — the CI regression "
                             "gate (cpu time, not real time, so a "
                             "loaded runner can't fake a slowdown)")
    parser.add_argument("--filter", dest="bench_filter", default=None,
                        help="--benchmark_filter regex")
    parser.add_argument("--min-time", type=float, default=0.05,
                        help="--benchmark_min_time per benchmark")
    parser.add_argument("--repetitions", type=int, default=1,
                        help="repeat each benchmark N times and record "
                             "the median (robust against machine "
                             "noise)")
    args = parser.parse_args()

    raw, counters = run_benchmarks(args.bench, args.bench_filter,
                                   args.min_time, args.repetitions)
    summary = summarize(raw, lambda name: not is_e2e(name))
    with open(args.output, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output} "
          f"({len(summary['benchmarks'])} benchmarks)")

    e2e_baseline = (load_e2e_baseline(args.e2e_baseline)
                    if args.e2e_baseline else None)
    e2e = add_speedups(summarize(raw, is_e2e))
    e2e["metadata"] = host_metadata(raw)
    e2e["counters"] = counters
    e2e["counter_deltas"] = counter_deltas(counters, e2e_baseline)
    if e2e["benchmarks"]:
        with open(args.e2e_output, "w") as fh:
            json.dump(e2e, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.e2e_output} "
              f"({len(e2e['benchmarks'])} replays)")
        for key, entry in sorted(e2e["speedups"].items()):
            cpu_s = (f", cpu {entry['cpu_speedup']:.2f}x"
                     if "cpu_speedup" in entry else "")
            print(f"  {key}: {entry['legacy_ms']:.1f}ms -> "
                  f"{entry['extent_ms']:.1f}ms "
                  f"({entry['speedup']:.2f}x{cpu_s})")
        for key, entry in sorted(e2e["pipeline_speedups"].items()):
            print(f"  pipeline {key}: {entry['serial_ms']:.1f}ms -> "
                  f"{entry['pipelined_ms']:.1f}ms "
                  f"({entry['speedup']:.2f}x)")
        for key, entry in sorted(e2e["grid_speedups"].items()):
            print(f"  grid {key}: {entry['serial_ms']:.1f}ms -> "
                  f"{entry['grid_ms']:.1f}ms "
                  f"({entry['speedup']:.2f}x)")
        for key, entry in sorted(e2e["curve_speedups"].items()):
            cpu_s = (f", cpu {entry['cpu_speedup']:.2f}x"
                     if "cpu_speedup" in entry else "")
            print(f"  curve {key}: {entry['grid_ms']:.1f}ms -> "
                  f"{entry['curve_ms']:.1f}ms "
                  f"({entry['speedup']:.2f}x{cpu_s})")
        failed = check_curve_floor(e2e, args.e2e_max_regression)
        if e2e_baseline is not None:
            failed += check_e2e_regressions(e2e, e2e_baseline,
                                            args.e2e_baseline,
                                            args.e2e_warn_regression,
                                            args.e2e_max_regression)
        if failed:
            raise SystemExit(1)

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        regressed = compare(summary, baseline, args.max_regression)
        if regressed:
            for name, ratio in regressed:
                print(f"REGRESSION: {name} is {ratio:.2f}x the "
                      f"baseline (cap {args.max_regression:.2f}x)",
                      file=sys.stderr)
            raise SystemExit(1)


if __name__ == "__main__":
    main()
