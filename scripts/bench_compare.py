#!/usr/bin/env python3
"""Run the perf microbenchmarks and emit BENCH_microbench.json.

Runs ``perf_microbench`` with google-benchmark's JSON reporter,
normalizes the result into a compact {benchmark: {real_time_ns, ...}}
summary, and writes it to BENCH_microbench.json so CI can archive a
perf snapshot per commit.  With ``--baseline previous.json`` it also
prints a per-benchmark comparison and (with ``--max-regression``)
fails when any benchmark slowed down beyond the allowed ratio.

Usage:
    bench_compare.py --bench build/bench/perf_microbench \
        [--output BENCH_microbench.json] \
        [--baseline old.json] [--max-regression 1.30] \
        [--filter REGEX] [--min-time SECONDS]
"""

import argparse
import json
import subprocess
import sys


def run_benchmarks(bench, bench_filter, min_time):
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed: {' '.join(cmd)}")
    return json.loads(proc.stdout)


def summarize(raw):
    """Flatten the google-benchmark report to one entry per benchmark."""
    out = {"context": raw.get("context", {}), "benchmarks": {}}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        entry = {
            "real_time_ns": bench.get("real_time"),
            "cpu_time_ns": bench.get("cpu_time"),
            "iterations": bench.get("iterations"),
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        out["benchmarks"][bench["name"]] = entry
    return out


def compare(current, baseline, max_regression):
    """Print a comparison table; return names regressed past the cap."""
    regressed = []
    base = baseline.get("benchmarks", {})
    rows = []
    for name, entry in sorted(current["benchmarks"].items()):
        now = entry.get("real_time_ns")
        before = base.get(name, {}).get("real_time_ns")
        if not now or not before:
            rows.append((name, now, before, None))
            continue
        ratio = now / before
        rows.append((name, now, before, ratio))
        if max_regression is not None and ratio > max_regression:
            regressed.append((name, ratio))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'benchmark':<{width}}  {'now':>12}  {'base':>12}  ratio")
    for name, now, before, ratio in rows:
        now_s = f"{now:.0f}ns" if now else "-"
        before_s = f"{before:.0f}ns" if before else "-"
        ratio_s = f"{ratio:.2f}x" if ratio is not None else "new"
        print(f"{name:<{width}}  {now_s:>12}  {before_s:>12}  {ratio_s}")
    return regressed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench",
                        default="build/bench/perf_microbench",
                        help="path to the perf_microbench binary")
    parser.add_argument("--output", default="BENCH_microbench.json",
                        help="where to write the JSON summary")
    parser.add_argument("--baseline",
                        help="previous BENCH_microbench.json to "
                             "compare against")
    parser.add_argument("--max-regression", type=float, default=None,
                        help="fail if any benchmark's real time grows "
                             "past this ratio vs the baseline "
                             "(e.g. 1.30 = 30%% slower)")
    parser.add_argument("--filter", dest="bench_filter", default=None,
                        help="--benchmark_filter regex")
    parser.add_argument("--min-time", type=float, default=0.05,
                        help="--benchmark_min_time per benchmark")
    args = parser.parse_args()

    raw = run_benchmarks(args.bench, args.bench_filter, args.min_time)
    summary = summarize(raw)
    with open(args.output, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output} "
          f"({len(summary['benchmarks'])} benchmarks)")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        regressed = compare(summary, baseline, args.max_regression)
        if regressed:
            for name, ratio in regressed:
                print(f"REGRESSION: {name} is {ratio:.2f}x the "
                      f"baseline (cap {args.max_regression:.2f}x)",
                      file=sys.stderr)
            raise SystemExit(1)


if __name__ == "__main__":
    main()
