#!/usr/bin/env python3
"""Convert nvfs bench output tables to CSV for plotting.

The bench binaries print fixed-width tables bounded by dashed rules.
This script extracts every such table from stdin (or the files given
as arguments) and writes one CSV per table next to the input (or to
stdout with --stdout).

Usage:
    ./build/bench/fig2_byte_lifetimes | scripts/tables_to_csv.py --stdout
    scripts/tables_to_csv.py bench_output.txt      # writes *.csv
"""

import csv
import io
import re
import sys


def split_columns(header, rows):
    """Split rows into cells.

    Cells are separated by runs of two or more spaces (the table
    renderer pads columns with two-space gutters; within-cell text
    only ever uses single spaces).
    """
    out = []
    for line in [header] + rows:
        out.append(re.split(r" {2,}", line.strip()))
    return out


def extract_tables(text):
    """Yield (title, list-of-rows) for every dashed-rule table."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        if re.fullmatch(r"-{10,}", lines[i].strip()):
            title = lines[i - 1].strip() if i > 0 else ""
            header = lines[i + 1] if i + 1 < len(lines) else ""
            rows = []
            j = i + 2
            while j < len(lines):
                stripped = lines[j].strip()
                if re.fullmatch(r"-{10,}", stripped):
                    j += 1
                    # A rule can be a separator or the closing edge;
                    # closing if the next line is not a data row.
                    if j >= len(lines) or not lines[j].strip() or \
                            re.fullmatch(r"-{10,}", lines[j].strip()):
                        break
                    continue
                if not stripped:
                    break
                rows.append(lines[j])
                j += 1
            if header.strip() and rows:
                yield title, split_columns(header, rows)
            i = j
        else:
            i += 1


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    to_stdout = "--stdout" in sys.argv[1:]
    sources = args or ["-"]
    for source in sources:
        text = sys.stdin.read() if source == "-" else open(source).read()
        for index, (title, rows) in enumerate(extract_tables(text)):
            if to_stdout or source == "-":
                out = io.StringIO()
                csv.writer(out).writerows(rows)
                label = title or f"table {index}"
                print(f"# {label}")
                print(out.getvalue())
            else:
                path = f"{source}.table{index}.csv"
                with open(path, "w", newline="") as handle:
                    csv.writer(handle).writerows(rows)
                print(f"wrote {path}")


if __name__ == "__main__":
    main()
