#!/usr/bin/env python3
"""Unit tests for bench_compare.py's comparison robustness.

The comparison paths used to crash (KeyError / ZeroDivisionError /
AttributeError) on a missing baseline entry, a zero median, or a
malformed snapshot; they must skip-with-warning instead and only fail
the run when ``--e2e-max-regression`` catches a genuine slowdown.

Run directly (``python3 scripts/test_bench_compare.py``) or via ctest
(registered as ``script_bench_compare``).  Plain unittest — no
third-party test dependencies.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare  # noqa: E402


def entry(real_ns, cpu_ns=None):
    out = {"real_time_ns": real_ns, "iterations": 3}
    if cpu_ns is not None:
        out["cpu_time_ns"] = cpu_ns
    return out


class LoadBaselineTest(unittest.TestCase):
    def write_json(self, payload):
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", delete=False)
        self.addCleanup(os.unlink, handle.name)
        with handle:
            handle.write(payload)
        return handle.name

    def test_missing_file_warns_and_returns_none(self):
        err = io.StringIO()
        with redirect_stderr(err):
            result = bench_compare.load_e2e_baseline(
                "/nonexistent/BENCH_e2e.json")
        self.assertIsNone(result)
        self.assertIn("WARNING", err.getvalue())

    def test_truncated_json_warns_and_returns_none(self):
        path = self.write_json('{"benchmarks": {')
        err = io.StringIO()
        with redirect_stderr(err):
            result = bench_compare.load_e2e_baseline(path)
        self.assertIsNone(result)
        self.assertIn("WARNING", err.getvalue())

    def test_wrong_shape_warns_and_returns_none(self):
        for payload in ('[1, 2, 3]', '{"benchmarks": [1]}', '"x"'):
            path = self.write_json(payload)
            err = io.StringIO()
            with redirect_stderr(err):
                result = bench_compare.load_e2e_baseline(path)
            self.assertIsNone(result, payload)
            self.assertIn("WARNING", err.getvalue())

    def test_valid_snapshot_loads(self):
        path = self.write_json(json.dumps(
            {"benchmarks": {"BM_X": entry(100.0)}}))
        self.assertIsNotNone(bench_compare.load_e2e_baseline(path))


class BaselineTimesTest(unittest.TestCase):
    def test_missing_entry_skips_with_warning(self):
        err = io.StringIO()
        with redirect_stderr(err):
            self.assertIsNone(
                bench_compare.baseline_times({}, "BM_New"))
        self.assertIn("no baseline entry for BM_New", err.getvalue())

    def test_zero_median_skips_with_warning(self):
        base = {"BM_Zero": entry(0.0)}
        err = io.StringIO()
        with redirect_stderr(err):
            self.assertIsNone(
                bench_compare.baseline_times(base, "BM_Zero"))
        self.assertIn("zero or malformed", err.getvalue())

    def test_malformed_entry_skips_with_warning(self):
        for bad in (None, 3.5, "fast", {"real_time_ns": "quick"}):
            err = io.StringIO()
            with redirect_stderr(err):
                self.assertIsNone(bench_compare.baseline_times(
                    {"BM_Bad": bad}, "BM_Bad"), bad)
            self.assertIn("WARNING", err.getvalue())

    def test_zero_cpu_median_degrades_to_real_only(self):
        base = {"BM_X": entry(100.0, 0.0)}
        self.assertEqual(
            bench_compare.baseline_times(base, "BM_X"), (100.0, None))


class CheckE2eRegressionsTest(unittest.TestCase):
    def check(self, current, baseline, warn=1.10, cap=None):
        err = io.StringIO()
        with redirect_stderr(err):
            failed = bench_compare.check_e2e_regressions(
                {"benchmarks": current}, {"benchmarks": baseline},
                "BENCH_e2e.json", warn, cap)
        return failed, err.getvalue()

    def test_missing_baseline_entry_does_not_fail_run(self):
        failed, err = self.check({"BM_New": entry(100.0)}, {},
                                 cap=1.10)
        self.assertEqual(failed, [])
        self.assertIn("no baseline entry", err)

    def test_zero_baseline_median_does_not_crash(self):
        failed, err = self.check(
            {"BM_X": entry(100.0, 90.0)}, {"BM_X": entry(0.0, 0.0)},
            cap=1.10)
        self.assertEqual(failed, [])
        self.assertIn("zero or malformed", err)

    def test_cpu_regression_fails_only_with_cap(self):
        current = {"BM_X": entry(500.0, 500.0)}
        baseline = {"BM_X": entry(100.0, 100.0)}
        failed, err = self.check(current, baseline, cap=None)
        self.assertEqual(failed, [])
        self.assertIn("WARNING", err)
        failed, err = self.check(current, baseline, cap=1.10)
        self.assertEqual([name for name, _ in failed], ["BM_X"])
        self.assertIn("REGRESSION", err)

    def test_within_cap_passes(self):
        failed, _ = self.check({"BM_X": entry(105.0, 104.0)},
                               {"BM_X": entry(100.0, 100.0)},
                               cap=1.10)
        self.assertEqual(failed, [])


class CompareTest(unittest.TestCase):
    def test_malformed_baseline_reads_as_new(self):
        current = {"benchmarks": {"BM_A": entry(100.0)}}
        out = io.StringIO()
        err = io.StringIO()
        with redirect_stderr(err):
            old_stdout = sys.stdout
            sys.stdout = out
            try:
                regressed = bench_compare.compare(
                    current, {"benchmarks": {"BM_A": 7}}, 1.3)
            finally:
                sys.stdout = old_stdout
        self.assertEqual(regressed, [])
        self.assertIn("new", out.getvalue())

    def test_zero_baseline_median_is_not_divided(self):
        current = {"benchmarks": {"BM_A": entry(100.0)}}
        baseline = {"benchmarks": {"BM_A": entry(0.0)}}
        out = io.StringIO()
        old_stdout = sys.stdout
        sys.stdout = out
        try:
            regressed = bench_compare.compare(current, baseline, 1.3)
        finally:
            sys.stdout = old_stdout
        self.assertEqual(regressed, [])


class CountersTest(unittest.TestCase):
    def test_load_stats_snapshot_flattens(self):
        snap = {
            "version": 1,
            "enabled": True,
            "stats": {
                "pool.tasks_submitted": {
                    "kind": "counter", "count": 4, "value": 4},
                "pool.queue_depth_hwm": {
                    "kind": "max", "count": 4, "value": 3},
                "sweep.replay": {
                    "kind": "timer", "count": 2, "total_ns": 500,
                    "min_ns": 200, "max_ns": 300},
            },
        }
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".json", delete=False) as handle:
            json.dump(snap, handle)
        self.addCleanup(os.unlink, handle.name)
        flat = bench_compare.load_stats_snapshot(handle.name)
        self.assertEqual(flat["pool.tasks_submitted"], 4)
        self.assertEqual(flat["pool.queue_depth_hwm"], 3)
        self.assertEqual(flat["sweep.replay.total_ns"], 500)
        self.assertEqual(flat["sweep.replay.count"], 2)

    def test_load_stats_snapshot_tolerates_garbage(self):
        self.assertEqual(
            bench_compare.load_stats_snapshot("/nonexistent"), {})
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".json", delete=False) as handle:
            handle.write('{"stats": [1,2]}')
        self.addCleanup(os.unlink, handle.name)
        self.assertEqual(
            bench_compare.load_stats_snapshot(handle.name), {})

    def test_counter_deltas(self):
        current = {"cache.extent_probes": 120, "new.counter": 5}
        baseline = {"counters": {"cache.extent_probes": 100,
                                 "gone.counter": 9}}
        self.assertEqual(
            bench_compare.counter_deltas(current, baseline),
            {"cache.extent_probes": 20})

    def test_counter_deltas_without_baseline(self):
        self.assertEqual(
            bench_compare.counter_deltas({"a": 1}, None), {})
        self.assertEqual(
            bench_compare.counter_deltas({"a": 1},
                                         {"counters": "x"}), {})


if __name__ == "__main__":
    unittest.main()
