#!/usr/bin/env python3
"""Validate an NVFS_STATS_OUT snapshot against scripts/stats_schema.json.

A minimal validator for the subset of JSON Schema the stats schema
uses (type / required / const / enum / minimum / additionalProperties
/ oneOf) — the container has no jsonschema package, and the CI obs job
only needs to prove the snapshot keeps its documented shape.

Usage:
    validate_stats.py SNAPSHOT.json [--schema scripts/stats_schema.json]
    validate_stats.py SNAPSHOT.json --require-stat lfs.segments_sealed

Exit 0 when the snapshot conforms (and every --require-stat name is
present with a nonzero count); exit 1 with a path-qualified message
otherwise.
"""

import argparse
import json
import os
import sys


class ValidationError(Exception):
    pass


def fail(path, message):
    raise ValidationError(f"{path or '$'}: {message}")


TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int)
    and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(value, schema, path=""):
    if "const" in schema and value != schema["const"]:
        fail(path, f"expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        fail(path, f"expected one of {schema['enum']}, got {value!r}")
    expected = schema.get("type")
    if expected is not None and not TYPE_CHECKS[expected](value):
        fail(path, f"expected {expected}, got "
                   f"{type(value).__name__}")
    if "minimum" in schema and isinstance(value, (int, float)) and \
            not isinstance(value, bool) and value < schema["minimum"]:
        fail(path, f"{value} is below minimum {schema['minimum']}")
    if "oneOf" in schema:
        errors = []
        for i, alternative in enumerate(schema["oneOf"]):
            try:
                validate(value, alternative, path)
                break
            except ValidationError as error:
                errors.append(f"[{i}] {error}")
        else:
            fail(path, "matched no oneOf alternative: " +
                 "; ".join(errors))
    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                fail(path, f"missing required member '{name}'")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for name, member in value.items():
            member_path = f"{path}.{name}" if path else name
            if name in properties:
                validate(member, properties[name], member_path)
            elif isinstance(additional, dict):
                validate(member, additional, member_path)
            elif additional is False:
                fail(member_path, "unexpected member")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshot", help="NVFS_STATS_OUT JSON file")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(
            __file__)), "stats_schema.json"))
    parser.add_argument(
        "--require-stat", action="append", default=[],
        metavar="NAME",
        help="additionally require this stat to be present with a "
             "nonzero count (repeatable)")
    args = parser.parse_args()

    with open(args.schema) as fh:
        schema = json.load(fh)
    try:
        with open(args.snapshot) as fh:
            snapshot = json.load(fh)
    except (OSError, ValueError) as error:
        print(f"FAIL: cannot read {args.snapshot}: {error}",
              file=sys.stderr)
        return 1

    try:
        validate(snapshot, schema)
    except ValidationError as error:
        print(f"FAIL: {args.snapshot}: {error}", file=sys.stderr)
        return 1

    stats = snapshot.get("stats", {})
    missing = []
    for name in args.require_stat:
        entry = stats.get(name)
        if not isinstance(entry, dict) or not entry.get("count"):
            missing.append(name)
    if missing:
        print(f"FAIL: {args.snapshot}: required stats absent or "
              f"zero: {', '.join(missing)}", file=sys.stderr)
        return 1

    print(f"OK: {args.snapshot}: {len(stats)} stats conform to "
          f"{os.path.basename(args.schema)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
